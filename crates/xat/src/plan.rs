//! XAT algebra plans: operator definitions (§2.2.2) and the schema
//! annotation pass that computes each table's **Order Schema** (Table 3.1)
//! and every column's **Context Schema** (Table 4.1).
//!
//! Annotation happens once, at plan build time — "this cost … does not
//! depend on the size of processed data" (§3.4.2) — and is timed separately
//! so the Figure 3.7–3.10 cost breakdowns can report it.

use crate::context::{ContextSchema, LngCol, LngSpec, OrdSpec};
use crate::table::ColInfo;
use crate::value::Atomic;
use std::fmt;
use xquery_lang::{AggFunc, CmpOp, NodeTest, Step};

/// A scalar operand in selection / join predicates.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// The value(s) of a column's cell.
    Col(String),
    /// Values reached by navigating `steps` from the column's node(s)
    /// (`$b/title`); comparison is existential over the resulting sequence.
    Path { col: String, steps: Vec<Step> },
    /// A constant.
    Const(Atomic),
}

impl Operand {
    /// Column this operand reads, if any.
    pub fn col(&self) -> Option<&str> {
        match self {
            Operand::Col(c) | Operand::Path { col: c, .. } => Some(c),
            Operand::Const(_) => None,
        }
    }
}

/// A conjunction of comparisons (the paper's ComparisonExpr `where` subset).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Pred {
    pub conjuncts: Vec<(Operand, CmpOp, Operand)>,
}

impl Pred {
    pub fn eq(l: Operand, r: Operand) -> Pred {
        Pred { conjuncts: vec![(l, CmpOp::Eq, r)] }
    }

    pub fn and(mut self, c: (Operand, CmpOp, Operand)) -> Pred {
        self.conjuncts.push(c);
        self
    }
}

/// One slot of a Tagger pattern: a column reference or literal text.
///
/// A multi-slot pattern subsumes the explicit `XML Union` chain the paper's
/// plans insert before a Tagger (Fig 2.2 operator #13): each slot receives a
/// fixed, plan-stable order prefix exactly as `assignColIdPrfx` (Fig 4.5)
/// would assign, so slot order — hence query-imposed construction order — is
/// reproducible across initial computation and delta propagation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatSlot {
    Col(String),
    Text(String),
}

/// A Tagger pattern: one element template (`<entry>{$col4}</entry>`). The
/// translator emits one Tagger per element constructor, as Rainbow does
/// ("the Tagger does not build the result hierarchy", §2.2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    pub name: String,
    /// Attributes: literal or single-column slots (`Y="{$y}"`).
    pub attrs: Vec<(String, PatSlot)>,
    pub content: Vec<PatSlot>,
}

impl Pattern {
    /// Columns referenced by content slots, in slot order.
    pub fn content_cols(&self) -> Vec<&str> {
        self.content
            .iter()
            .filter_map(|s| match s {
                PatSlot::Col(c) => Some(c.as_str()),
                PatSlot::Text(_) => None,
            })
            .collect()
    }

    /// Columns referenced anywhere (attributes first, then content).
    pub fn all_cols(&self) -> Vec<&str> {
        self.attrs
            .iter()
            .filter_map(|(_, s)| match s {
                PatSlot::Col(c) => Some(c.as_str()),
                PatSlot::Text(_) => None,
            })
            .chain(self.content_cols())
            .collect()
    }
}

/// The function applied inside a Group By (§2.2.2: "we mainly consider the
/// parameter func to be a Combine operator or an aggregate function").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupFunc {
    /// Nest: combine the column's items into one sequence per group.
    Combine { col: String },
    /// Aggregate the column's values per group into `out`.
    Agg { func: AggFunc, col: String, out: String },
}

/// XAT operators (§2.2.2). Binary operators take their inputs from the plan
/// node's two children; unary ones from the single child.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Leaf: a single empty tuple — the translator's seed for constructors
    /// whose children are independent sub-queries (Fig 2.3's Merge pattern).
    Unit,
    /// Leaf: the whole document as a single-column, single-tuple table.
    Source { doc: String, out: String },
    /// Leaf for incremental maintenance plans: like `Source`, but navigation
    /// is restricted to the update fragments registered for `doc` in the
    /// executor's delta context — the algebraic encoding of processing the
    /// *batch update tree* through the view (Ch. 7).
    DeltaSource { doc: String, out: String },
    /// Leaf reading `doc` with the registered update fragments excluded —
    /// the document state "on the other side" of the update (pre-state for
    /// inserts, post-state for deletes). Needed by the telescoped
    /// propagation terms when a document occurs more than once in the view
    /// (§7.2, §7.5): `Δ(V) = Σᵢ V(S_pre^{<i}, Δᵢ, S_post^{>i})`.
    ExcludeSource { doc: String, out: String },
    /// φ — navigate + unnest (§2.2.2).
    NavUnnest { col: String, steps: Vec<Step>, out: String },
    /// Φ — navigate, keeping the result as one collection per input tuple.
    NavCollection { col: String, steps: Vec<Step>, out: String },
    /// σ.
    Select { pred: Pred },
    /// ⋈ (binary).
    Join { pred: Pred },
    /// ⟕ left outer join (binary).
    LeftOuterJoin { pred: Pred },
    /// × (binary).
    Cartesian,
    /// δ — duplicate elimination by value of `col`.
    Distinct { col: String },
    /// γ — value-based grouping with a Combine or aggregate function.
    GroupBy { cols: Vec<String>, func: GroupFunc },
    /// τ — produces an order-values column `out` from the listed key columns
    /// (bool = descending); does **not** physically sort (§3.4.3).
    OrderBy { keys: Vec<(String, bool)>, out: String },
    /// C — collapse the table to one tuple whose `col` cell holds every
    /// item, with overriding orders assigned per Fig 3.3 / Fig 4.3.
    Combine { col: String },
    /// T — construct new nodes from a pattern.
    Tagger { pattern: Pattern, out: String },
    /// ∪x — union two columns' sequences into `out` with column-id order
    /// prefixes (Fig 4.5).
    XmlUnion { a: String, b: String, out: String },
    /// υ — remove duplicates (by node identity) from sequences in `col`.
    XmlUnique { col: String, out: String },
    /// Per-tuple aggregate over the items of `col` (supports `count($x/p)`
    /// in return clauses).
    AggCol { col: String, func: AggFunc, out: String },
    /// M — merge two (usually single-tuple) tables side by side; a
    /// single-tuple side is broadcast.
    Merge,
    /// Semi-join filter: keep tuples whose operand values intersect the
    /// given set. Not part of the paper's surface algebra — it is the
    /// engine-level realization of processing *only* the update-relevant
    /// part of the non-delta join side, which the paper's update-tree
    /// propagation achieves implicitly. Inserted at execution time by the
    /// delta join rules; never produced by the translator.
    InSet { operand: Operand, values: Vec<Atomic> },
}

/// A plan node. `schema` is filled in by [`annotate`].
#[derive(Clone, Debug)]
pub struct Plan {
    pub op: OpKind,
    pub children: Vec<Plan>,
    pub schema: Schema,
}

/// Computed output schema of a plan node.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    pub cols: Vec<ColInfo>,
    /// Order Schema: indices into `cols` (Table 3.1).
    pub order: Vec<usize>,
}

impl Schema {
    pub fn col_idx(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    pub fn col(&self, name: &str) -> Option<&ColInfo> {
        self.cols.iter().find(|c| c.name == name)
    }

    fn order_col_names(&self) -> Vec<String> {
        self.order.iter().map(|&i| self.cols[i].name.clone()).collect()
    }

    /// The order-determining column names for `col`: its own name when the
    /// ord spec is `()`, the listed columns otherwise, none when null.
    fn ord_cols_of(&self, name: &str) -> Vec<String> {
        match self.col(name).map(|c| &c.cxt.ord) {
            Some(OrdSpec::Empty) => vec![name.to_string()],
            Some(OrdSpec::Cols(c)) => c.clone(),
            _ => Vec::new(),
        }
    }

    /// One-level lineage resolution: the lineage columns of `col`, or `col`
    /// itself when self-referential.
    fn lng_cols_of(&self, name: &str) -> Vec<LngCol> {
        match self.col(name).map(|c| &c.cxt.lng) {
            Some(LngSpec::Cols(c)) => c.clone(),
            _ => vec![LngCol::plain(name)],
        }
    }
}

impl Plan {
    pub fn leaf(op: OpKind) -> Plan {
        Plan { op, children: Vec::new(), schema: Schema::default() }
    }

    pub fn unary(op: OpKind, child: Plan) -> Plan {
        Plan { op, children: vec![child], schema: Schema::default() }
    }

    pub fn binary(op: OpKind, left: Plan, right: Plan) -> Plan {
        Plan { op, children: vec![left, right], schema: Schema::default() }
    }

    /// Number of operators in the plan.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Plan::size).sum::<usize>()
    }

    /// Source documents referenced by this plan (with duplicates removed),
    /// in leaf order.
    pub fn source_docs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_docs(&mut out);
        out
    }

    fn collect_docs(&self, out: &mut Vec<String>) {
        if let OpKind::Source { doc, .. }
        | OpKind::DeltaSource { doc, .. }
        | OpKind::ExcludeSource { doc, .. } = &self.op
        {
            if !out.contains(doc) {
                out.push(doc.clone());
            }
        }
        for c in &self.children {
            c.collect_docs(out);
        }
    }

    /// Replace the `Source` leaves reading `doc` with `DeltaSource` leaves —
    /// the plan transformation that derives an Incremental Maintenance Plan
    /// (Ch. 7): `V(S1, S2) → V(ΔS1, S2)`. Correct on its own only when the
    /// document occurs once in the plan; for multiple occurrences use the
    /// telescoped [`Plan::imp_term`]s.
    pub fn with_delta_source(&self, doc: &str) -> Plan {
        let op = match &self.op {
            OpKind::Source { doc: d, out } if d == doc => {
                OpKind::DeltaSource { doc: d.clone(), out: out.clone() }
            }
            other => other.clone(),
        };
        Plan {
            op,
            children: self.children.iter().map(|c| c.with_delta_source(doc)).collect(),
            schema: self.schema.clone(),
        }
    }

    /// True if this subtree contains a `DeltaSource` leaf.
    pub fn has_delta_source(&self) -> bool {
        matches!(self.op, OpKind::DeltaSource { .. })
            || self.children.iter().any(Plan::has_delta_source)
    }

    /// Replace every `DeltaSource` leaf by a plain `Source` (`false`) or an
    /// `ExcludeSource` (`true`) — used by the Left Outer Join delta rule
    /// (§7.4) to evaluate the right input's pre-/post-state.
    pub fn delta_replaced(&self, exclude: bool) -> Plan {
        let op = match &self.op {
            OpKind::DeltaSource { doc, out } => {
                if exclude {
                    OpKind::ExcludeSource { doc: doc.clone(), out: out.clone() }
                } else {
                    OpKind::Source { doc: doc.clone(), out: out.clone() }
                }
            }
            other => other.clone(),
        };
        Plan {
            op,
            children: self.children.iter().map(|c| c.delta_replaced(exclude)).collect(),
            schema: self.schema.clone(),
        }
    }

    /// Insert an [`OpKind::InSet`] semi-join filter at the deepest point of
    /// this plan where the operand's column exists (just above the operator
    /// that creates it), so navigation below stays cheap and everything
    /// above — joins, taggers, grouping — processes only update-relevant
    /// tuples.
    pub fn with_semifilter(&self, operand: &Operand, values: &[Atomic]) -> Plan {
        let Some(col) = operand.col() else { return self.clone() };
        if self.schema.col_idx(col).is_none() {
            return self.clone();
        }
        self.push_semifilter(col, operand, values)
    }

    fn push_semifilter(&self, col: &str, operand: &Operand, values: &[Atomic]) -> Plan {
        // Descend into the unique child still carrying the column.
        let carriers: Vec<usize> = self
            .children
            .iter()
            .enumerate()
            .filter(|(_, c)| c.schema.col_idx(col).is_some())
            .map(|(i, _)| i)
            .collect();
        if carriers.len() == 1 {
            let i = carriers[0];
            let mut out = self.clone();
            out.children[i] = out.children[i].push_semifilter(col, operand, values);
            return out;
        }
        // The column is created here (or ambiguous): filter right above.
        let schema = self.schema.clone();
        Plan {
            op: OpKind::InSet { operand: operand.clone(), values: values.to_vec() },
            children: vec![self.clone()],
            schema,
        }
    }

    /// Number of `Source` leaves reading `doc` (occurrences of the document
    /// in the view definition — 2 for self-join views, §7.5, and for views
    /// like Figure 1.2(a) whose outer and inner blocks both scan bib.xml).
    pub fn count_sources(&self, doc: &str) -> usize {
        let own = matches!(&self.op, OpKind::Source { doc: d, .. } if d == doc) as usize;
        own + self.children.iter().map(|c| c.count_sources(doc)).sum::<usize>()
    }

    /// The `term`-th telescoped incremental maintenance plan for `doc`
    /// (0-based, `term < count_sources(doc)`):
    ///
    /// ```text
    /// Δ(V) = Σᵢ V(S_pre at occurrences < i,  Δ at occurrence i,  S_post at occurrences > i)
    /// ```
    ///
    /// The store holds exactly one physical state — post-update when
    /// propagating inserts (apply first, then propagate), pre-update when
    /// propagating deletes (propagate first, then apply). `store_is_post`
    /// says which, and decides whether "the other state" (reached via
    /// [`OpKind::ExcludeSource`]) is needed before or after the Δ
    /// occurrence.
    pub fn imp_term(&self, doc: &str, term: usize, store_is_post: bool) -> Plan {
        let mut counter = 0usize;
        self.imp_term_walk(doc, term, store_is_post, &mut counter)
    }

    fn imp_term_walk(
        &self,
        doc: &str,
        term: usize,
        store_is_post: bool,
        counter: &mut usize,
    ) -> Plan {
        let op = match &self.op {
            OpKind::Source { doc: d, out } if d == doc => {
                let i = *counter;
                *counter += 1;
                if i == term {
                    OpKind::DeltaSource { doc: d.clone(), out: out.clone() }
                } else {
                    // Occurrences before the Δ see the pre-state, after it
                    // the post-state; whichever differs from the stored
                    // state is an ExcludeSource.
                    let needs_exclude = if store_is_post { i < term } else { i > term };
                    if needs_exclude {
                        OpKind::ExcludeSource { doc: d.clone(), out: out.clone() }
                    } else {
                        OpKind::Source { doc: d.clone(), out: out.clone() }
                    }
                }
            }
            other => other.clone(),
        };
        Plan {
            op,
            children: self
                .children
                .iter()
                .map(|c| c.imp_term_walk(doc, term, store_is_post, counter))
                .collect(),
            schema: self.schema.clone(),
        }
    }
}

/// `true` if every location step dereferences a value (attribute / text) —
/// such navigations keep the entry point's order and lineage (Table 3.1
/// category IV note and Table 4.1 category III special case).
pub fn is_value_path(steps: &[Step]) -> bool {
    !steps.is_empty() && steps.iter().all(|s| matches!(s.test, NodeTest::Attr(_) | NodeTest::Text))
}

/// Annotate a plan bottom-up: compute output columns, Context Schemas
/// (Table 4.1) and Order Schemas (Table 3.1).
///
/// Returns an error message for malformed plans (unknown columns etc.).
pub fn annotate(plan: &mut Plan) -> Result<(), String> {
    for c in &mut plan.children {
        annotate(c)?;
    }
    let schema = match &plan.op {
        OpKind::Unit => Schema::default(),
        OpKind::Source { out, .. }
        | OpKind::DeltaSource { out, .. }
        | OpKind::ExcludeSource { out, .. } => Schema {
            cols: vec![ColInfo { name: out.clone(), cxt: ContextSchema::source() }],
            order: Vec::new(),
        },
        OpKind::NavUnnest { col, steps, out } => {
            let input = &plan.children[0].schema;
            let in_idx =
                input.col_idx(col).ok_or_else(|| format!("NavUnnest: unknown column ${col}"))?;
            let mut cols = input.cols.clone();
            let value_nav = is_value_path(steps);
            let cxt = if value_nav {
                // Values inherit the entry point's order and lineage.
                let ord = match &input.col(col).unwrap().cxt.ord {
                    OrdSpec::Null => OrdSpec::Null,
                    OrdSpec::Empty => OrdSpec::Cols(vec![col.clone()]),
                    OrdSpec::Cols(c) => OrdSpec::Cols(c.clone()),
                };
                ContextSchema::new(ord, LngSpec::Cols(vec![LngCol::plain(col.clone())]))
            } else {
                // Category III: unnested nodes get self lineage; order is the
                // entry order composed with the new column (implicit in the
                // self lineage, so `()` when the entry has no imposed order).
                let ord = match &input.col(col).unwrap().cxt.ord {
                    OrdSpec::Null | OrdSpec::Empty => OrdSpec::Empty,
                    OrdSpec::Cols(c) => OrdSpec::Cols(c.clone()),
                };
                ContextSchema::new(ord, LngSpec::SelfRef)
            };
            cols.push(ColInfo { name: out.clone(), cxt });
            // Order Schema (Table 3.1 cat IV): append `out`, dropping the
            // entry column if it is the last order column; value navigations
            // keep the input Order Schema unchanged.
            let mut order = input.order.clone();
            if !value_nav {
                if order.last() == Some(&in_idx) {
                    order.pop();
                }
                order.push(cols.len() - 1);
            }
            Schema { cols, order }
        }
        OpKind::NavCollection { col, steps: _, out } => {
            let input = &plan.children[0].schema;
            let in_cxt =
                &input.col(col).ok_or_else(|| format!("NavCollection: unknown column ${col}"))?.cxt;
            // Category II: collections keep the entry's lineage and order.
            let ord = match &in_cxt.ord {
                OrdSpec::Null => OrdSpec::Null,
                OrdSpec::Empty => OrdSpec::Empty,
                OrdSpec::Cols(c) => OrdSpec::Cols(c.clone()),
            };
            let lng = LngSpec::Cols(input.lng_cols_of(col));
            let mut cols = input.cols.clone();
            cols.push(ColInfo { name: out.clone(), cxt: ContextSchema::new(ord, lng) });
            Schema { cols, order: input.order.clone() }
        }
        OpKind::Select { .. } | OpKind::InSet { .. } => plan.children[0].schema.clone(),
        OpKind::AggCol { col, out, .. } => {
            let input = &plan.children[0].schema;
            let lng = LngSpec::Cols(input.lng_cols_of(col));
            let mut cols = input.cols.clone();
            cols.push(ColInfo { name: out.clone(), cxt: ContextSchema::new(OrdSpec::Null, lng) });
            Schema { cols, order: input.order.clone() }
        }
        OpKind::Join { .. } | OpKind::LeftOuterJoin { .. } | OpKind::Cartesian => {
            let (l, r) = (&plan.children[0].schema, &plan.children[1].schema);
            let l_os = l.order_col_names();
            let r_os = r.order_col_names();
            let mut cols = Vec::with_capacity(l.cols.len() + r.cols.len());
            // Category IX: left columns get (own.ord + OS(T2)); right columns
            // get (OS(T1) + own.ord).
            for c in &l.cols {
                let own = l.ord_cols_of(&c.name);
                let composed: Vec<String> = dedup(own.into_iter().chain(r_os.iter().cloned()));
                cols.push(ColInfo {
                    name: c.name.clone(),
                    cxt: ContextSchema::new(cols_or_empty(composed, &c.name), c.cxt.lng.clone()),
                });
            }
            for c in &r.cols {
                let own = r.ord_cols_of(&c.name);
                let composed: Vec<String> = dedup(l_os.iter().cloned().chain(own));
                cols.push(ColInfo {
                    name: c.name.clone(),
                    cxt: ContextSchema::new(cols_or_empty(composed, &c.name), c.cxt.lng.clone()),
                });
            }
            // Order Schema (cat III): OS(T1) ++ OS(T2).
            let order =
                l.order.iter().copied().chain(r.order.iter().map(|&i| i + l.cols.len())).collect();
            Schema { cols, order }
        }
        OpKind::Distinct { col } => {
            let input = &plan.children[0].schema;
            if input.col_idx(col).is_none() {
                return Err(format!("Distinct: unknown column ${col}"));
            }
            // Category VIII: order destroyed (Table 3.1 cat II) and every
            // column re-rooted at the distinct column. Re-rooted columns
            // carry no usable identity (their cells belong to an arbitrary
            // representative tuple), so we project them away: the output is
            // the distinct column alone, with self lineage.
            let cols = vec![ColInfo {
                name: col.clone(),
                cxt: ContextSchema::new(OrdSpec::Null, LngSpec::SelfRef),
            }];
            Schema { cols, order: Vec::new() }
        }
        OpKind::GroupBy { cols: gcols, func } => {
            let input = &plan.children[0].schema;
            for g in gcols {
                if input.col_idx(g).is_none() {
                    return Err(format!("GroupBy: unknown column ${g}"));
                }
            }
            // Category VI (value-based): groups are identified by the values
            // of the grouping columns, which remain in the output — so the
            // grouping columns become self-lineage (they *are* the group
            // identity) and every other output column derives from them
            // (Fig 4.2 #15: `$col5 [$y]`). No order among value groups.
            let group_lng: Vec<LngCol> = gcols.iter().map(|g| LngCol::plain(g.clone())).collect();
            let mut cols: Vec<ColInfo> = gcols
                .iter()
                .map(|g| ColInfo {
                    name: g.clone(),
                    cxt: ContextSchema::new(OrdSpec::Null, LngSpec::SelfRef),
                })
                .collect();
            match func {
                GroupFunc::Combine { col } => {
                    if input.col_idx(col).is_none() {
                        return Err(format!("GroupBy/Combine: unknown column ${col}"));
                    }
                    cols.push(ColInfo {
                        name: col.clone(),
                        cxt: ContextSchema::new(OrdSpec::Null, LngSpec::Cols(group_lng)),
                    });
                }
                GroupFunc::Agg { out, col, .. } => {
                    if input.col_idx(col).is_none() {
                        return Err(format!("GroupBy/Agg: unknown column ${col}"));
                    }
                    cols.push(ColInfo {
                        name: out.clone(),
                        cxt: ContextSchema::new(OrdSpec::Null, LngSpec::Cols(group_lng)),
                    });
                }
            }
            Schema { cols, order: Vec::new() }
        }
        OpKind::OrderBy { keys, out } => {
            let input = &plan.children[0].schema;
            for (k, _) in keys {
                if input.col_idx(k).is_none() {
                    return Err(format!("OrderBy: unknown column ${k}"));
                }
            }
            // Category XI: all columns ordered by the new order-values column.
            let mut cols: Vec<ColInfo> = input
                .cols
                .iter()
                .map(|c| ColInfo {
                    name: c.name.clone(),
                    cxt: ContextSchema::new(OrdSpec::Cols(vec![out.clone()]), c.cxt.lng.clone()),
                })
                .collect();
            cols.push(ColInfo {
                name: out.clone(),
                cxt: ContextSchema::new(OrdSpec::Empty, LngSpec::SelfRef),
            });
            let order = vec![cols.len() - 1];
            Schema { cols, order }
        }
        OpKind::Combine { col } => {
            let input = &plan.children[0].schema;
            if input.col_idx(col).is_none() {
                return Err(format!("Combine: unknown column ${col}"));
            }
            // Category IV: single collection with the "All" lineage.
            Schema {
                cols: vec![ColInfo {
                    name: col.clone(),
                    cxt: ContextSchema::new(OrdSpec::Null, LngSpec::Star),
                }],
                order: Vec::new(),
            }
        }
        OpKind::Tagger { pattern, out } => {
            let input = &plan.children[0].schema;
            for c in pattern.all_cols() {
                if input.col_idx(c).is_none() {
                    return Err(format!("Tagger: unknown column ${c}"));
                }
            }
            // Category V: new nodes have self lineage; order follows the
            // content columns' order specs.
            let content = pattern.content_cols();
            let ord = if content.is_empty() {
                OrdSpec::Null
            } else {
                let mut acc: Option<OrdSpec> = None;
                for c in &content {
                    let o = &input.col(c).unwrap().cxt.ord;
                    acc = Some(match acc {
                        None => o.clone(),
                        Some(prev) => OrdSpec::concat(&prev, o),
                    });
                }
                acc.unwrap()
            };
            let mut cols = input.cols.clone();
            cols.push(ColInfo {
                name: out.clone(),
                cxt: ContextSchema::new(ord, LngSpec::SelfRef),
            });
            Schema { cols, order: input.order.clone() }
        }
        OpKind::XmlUnion { a, b, out } => {
            let input = &plan.children[0].schema;
            let (ca, cb) = match (input.col(a), input.col(b)) {
                (Some(x), Some(y)) => (x.clone(), y.clone()),
                _ => return Err(format!("XmlUnion: unknown column ${a} or ${b}")),
            };
            // Category VII: branch-annotated lineage; branch keys `b`, `c`
            // (the first two canonical segments) order the two inputs.
            let lng = LngSpec::Cols(dedup_lng(
                input
                    .lng_cols_of(a)
                    .into_iter()
                    .map(|mut l| {
                        l.branch.get_or_insert(flexkey::Seg::nth(0));
                        l
                    })
                    .chain(input.lng_cols_of(b).into_iter().map(|mut l| {
                        l.branch.get_or_insert(flexkey::Seg::nth(1));
                        l
                    })),
            ));
            let ord = if ca.cxt.ord.is_empty_spec() && cb.cxt.ord.is_empty_spec() {
                OrdSpec::Empty
            } else {
                OrdSpec::concat(&ca.cxt.ord, &cb.cxt.ord)
            };
            let mut cols = input.cols.clone();
            cols.push(ColInfo { name: out.clone(), cxt: ContextSchema::new(ord, lng) });
            Schema { cols, order: input.order.clone() }
        }
        OpKind::XmlUnique { col, out } => {
            let input = &plan.children[0].schema;
            let in_cxt =
                &input.col(col).ok_or_else(|| format!("XmlUnique: unknown column ${col}"))?.cxt;
            // Category II: document order restored, lineage preserved.
            let mut cols = input.cols.clone();
            cols.push(ColInfo {
                name: out.clone(),
                cxt: ContextSchema::new(OrdSpec::Empty, in_cxt.lng.clone()),
            });
            Schema { cols, order: input.order.clone() }
        }
        OpKind::Merge => {
            let (l, r) = (&plan.children[0].schema, &plan.children[1].schema);
            let mut cols = l.cols.clone();
            cols.extend(r.cols.iter().cloned());
            Schema { cols, order: Vec::new() }
        }
    };
    plan.schema = schema;
    Ok(())
}

fn cols_or_empty(cols: Vec<String>, own: &str) -> OrdSpec {
    if cols.is_empty() {
        OrdSpec::Null
    } else if cols.len() == 1 && cols[0] == own {
        OrdSpec::Empty
    } else {
        OrdSpec::Cols(cols)
    }
}

fn dedup(it: impl Iterator<Item = String>) -> Vec<String> {
    let mut out = Vec::new();
    for x in it {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}

fn dedup_lng(it: impl Iterator<Item = LngCol>) -> Vec<LngCol> {
    let mut out: Vec<LngCol> = Vec::new();
    for x in it {
        if !out.iter().any(|y| y.col == x.col && y.branch == x.branch) {
            out.push(x);
        }
    }
    out
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Plan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            let name = match &p.op {
                OpKind::Unit => "Unit".into(),
                OpKind::Source { doc, out } => format!("Source \"{doc}\" → ${out}"),
                OpKind::DeltaSource { doc, out } => format!("ΔSource \"{doc}\" → ${out}"),
                OpKind::ExcludeSource { doc, out } => format!("Source∖Δ \"{doc}\" → ${out}"),
                OpKind::NavUnnest { col, steps, out } => {
                    format!("φ ${col},{} → ${out}", fmt_steps(steps))
                }
                OpKind::NavCollection { col, steps, out } => {
                    format!("Φ ${col},{} → ${out}", fmt_steps(steps))
                }
                OpKind::Select { pred } => format!("σ {pred:?}"),
                OpKind::Join { pred } => format!("⋈ {pred:?}"),
                OpKind::LeftOuterJoin { pred } => format!("⟕ {pred:?}"),
                OpKind::Cartesian => "×".into(),
                OpKind::Distinct { col } => format!("δ ${col}"),
                OpKind::GroupBy { cols, func } => format!("γ {cols:?} {func:?}"),
                OpKind::OrderBy { keys, out } => format!("τ {keys:?} → ${out}"),
                OpKind::Combine { col } => format!("C ${col}"),
                OpKind::Tagger { pattern, out } => format!("T <{}> → ${out}", pattern.name),
                OpKind::XmlUnion { a, b, out } => format!("∪x ${a},${b} → ${out}"),
                OpKind::XmlUnique { col, out } => format!("υ ${col} → ${out}"),
                OpKind::AggCol { col, func, out } => format!("agg {func:?}(${col}) → ${out}"),
                OpKind::Merge => "M".into(),
                OpKind::InSet { operand, values } => {
                    format!("σ∈ {operand:?} in {} values", values.len())
                }
            };
            let order = p
                .schema
                .order
                .iter()
                .map(|&i| p.schema.cols[i].name.clone())
                .collect::<Vec<_>>()
                .join(",");
            writeln!(f, "{pad}{name}   [OS: {order}]")?;
            for c in &p.children {
                go(c, f, depth + 1)?;
            }
            Ok(())
        }
        go(self, f, 0)
    }
}

fn fmt_steps(steps: &[Step]) -> String {
    let mut s = String::new();
    for st in steps {
        s.push_str(match st.axis {
            xquery_lang::Axis::Child => "/",
            xquery_lang::Axis::Descendant => "//",
        });
        match &st.test {
            NodeTest::Name(n) => s.push_str(n),
            NodeTest::Attr(a) => {
                s.push('@');
                s.push_str(a);
            }
            NodeTest::Text => s.push_str("text()"),
            NodeTest::Wildcard => s.push('*'),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use xquery_lang::Axis;

    fn step(name: &str) -> Step {
        Step::child(NodeTest::Name(name.into()))
    }

    fn src(doc: &str, out: &str) -> Plan {
        Plan::leaf(OpKind::Source { doc: doc.into(), out: out.into() })
    }

    #[test]
    fn source_schema() {
        let mut p = src("bib.xml", "S1");
        annotate(&mut p).unwrap();
        assert_eq!(p.schema.cols.len(), 1);
        assert_eq!(p.schema.cols[0].cxt.to_string(), "()[]");
        assert!(p.schema.order.is_empty());
    }

    #[test]
    fn nav_unnest_appends_order_schema() {
        let mut p = Plan::unary(
            OpKind::NavUnnest {
                col: "S1".into(),
                steps: vec![step("bib"), step("book")],
                out: "b".into(),
            },
            src("bib.xml", "S1"),
        );
        annotate(&mut p).unwrap();
        // $b: ()[]  (Fig 4.2 operator #5)
        assert_eq!(p.schema.col("b").unwrap().cxt.to_string(), "()[]");
        assert_eq!(p.schema.order, vec![1], "OS = ($b)");
    }

    #[test]
    fn value_nav_keeps_entry_lineage_and_order() {
        // φ $b,@year/text() → $col1 gets ()[$b]-style context (Fig 4.2 #6).
        let mut p = Plan::unary(
            OpKind::NavUnnest {
                col: "b".into(),
                steps: vec![Step::child(NodeTest::Attr("year".into()))],
                out: "col1".into(),
            },
            Plan::unary(
                OpKind::NavUnnest {
                    col: "S1".into(),
                    steps: vec![step("bib"), step("book")],
                    out: "b".into(),
                },
                src("bib.xml", "S1"),
            ),
        );
        annotate(&mut p).unwrap();
        let c = p.schema.col("col1").unwrap();
        assert_eq!(c.cxt.to_string(), "(b)[$b]");
        // OS unchanged: still ($b).
        assert_eq!(p.schema.order_col_names(), vec!["b"]);
    }

    #[test]
    fn join_composes_order_schemas() {
        // Join of books ($b) and entries ($e): OS = ($b, $e); $b gets
        // ($b,$e)[], $e gets ($b,$e)[] (Fig 4.2 #10).
        let left = Plan::unary(
            OpKind::NavUnnest {
                col: "S2".into(),
                steps: vec![step("bib"), step("book")],
                out: "b".into(),
            },
            src("bib.xml", "S2"),
        );
        let right = Plan::unary(
            OpKind::NavUnnest {
                col: "S3".into(),
                steps: vec![step("prices"), step("entry")],
                out: "e".into(),
            },
            src("prices.xml", "S3"),
        );
        let mut p = Plan::binary(
            OpKind::Join {
                pred: Pred::eq(
                    Operand::Path { col: "b".into(), steps: vec![step("title")] },
                    Operand::Path { col: "e".into(), steps: vec![step("b-title")] },
                ),
            },
            left,
            right,
        );
        annotate(&mut p).unwrap();
        assert_eq!(p.schema.col("b").unwrap().cxt.ord, OrdSpec::Cols(vec!["b".into(), "e".into()]));
        assert_eq!(p.schema.col("e").unwrap().cxt.ord, OrdSpec::Cols(vec!["b".into(), "e".into()]));
        assert_eq!(p.schema.order_col_names(), vec!["b", "e"]);
    }

    #[test]
    fn distinct_destroys_order_and_reroots_lineage() {
        let mut p = Plan::unary(
            OpKind::Distinct { col: "y".into() },
            Plan::unary(
                OpKind::NavUnnest {
                    col: "S1".into(),
                    steps: vec![
                        step("bib"),
                        step("book"),
                        Step::child(NodeTest::Attr("year".into())),
                    ],
                    out: "y".into(),
                },
                src("bib.xml", "S1"),
            ),
        );
        annotate(&mut p).unwrap();
        assert!(p.schema.order.is_empty());
        assert_eq!(p.schema.col("y").unwrap().cxt.to_string(), "[]");
        assert!(p.schema.col("y").unwrap().cxt.in_ecc());
    }

    #[test]
    fn group_by_assigns_group_lineage() {
        // γ$y(Combine $col5): $col5 gets [$y] (Fig 4.2 #15).
        let base = Plan::unary(
            OpKind::NavUnnest {
                col: "S1".into(),
                steps: vec![step("bib"), step("book")],
                out: "col5".into(),
            },
            src("bib.xml", "S1"),
        );
        let with_y = Plan::unary(
            OpKind::NavUnnest {
                col: "col5".into(),
                steps: vec![Step::child(NodeTest::Attr("year".into()))],
                out: "y".into(),
            },
            base,
        );
        let mut p = Plan::unary(
            OpKind::GroupBy {
                cols: vec!["y".into()],
                func: GroupFunc::Combine { col: "col5".into() },
            },
            with_y,
        );
        annotate(&mut p).unwrap();
        assert_eq!(p.schema.cols.len(), 2);
        // $y's lineage references $col5 (its entry), so the combined column's
        // lineage resolves through it.
        let c5 = p.schema.col("col5").unwrap();
        assert!(matches!(c5.cxt.lng, LngSpec::Cols(_)));
        assert!(c5.cxt.ord.is_null());
        assert!(p.schema.order.is_empty());
    }

    #[test]
    fn combine_collapses_to_star() {
        let mut p = Plan::unary(
            OpKind::Combine { col: "b".into() },
            Plan::unary(
                OpKind::NavUnnest {
                    col: "S1".into(),
                    steps: vec![step("bib"), step("book")],
                    out: "b".into(),
                },
                src("bib.xml", "S1"),
            ),
        );
        annotate(&mut p).unwrap();
        assert_eq!(p.schema.cols.len(), 1);
        assert_eq!(p.schema.col("b").unwrap().cxt.lng, LngSpec::Star);
    }

    #[test]
    fn order_by_introduces_order_values_column() {
        let mut p = Plan::unary(
            OpKind::OrderBy { keys: vec![("y".into(), false)], out: "__ord".into() },
            Plan::unary(
                OpKind::NavUnnest {
                    col: "S1".into(),
                    steps: vec![
                        step("bib"),
                        step("book"),
                        Step::child(NodeTest::Attr("year".into())),
                    ],
                    out: "y".into(),
                },
                src("bib.xml", "S1"),
            ),
        );
        annotate(&mut p).unwrap();
        assert_eq!(p.schema.order_col_names(), vec!["__ord"]);
        assert_eq!(p.schema.col("y").unwrap().cxt.ord, OrdSpec::Cols(vec!["__ord".into()]));
    }

    #[test]
    fn tagger_inherits_content_order_spec() {
        let base = Plan::unary(
            OpKind::NavUnnest {
                col: "S1".into(),
                steps: vec![step("bib"), step("book")],
                out: "b".into(),
            },
            src("bib.xml", "S1"),
        );
        let mut p = Plan::unary(
            OpKind::Tagger {
                pattern: Pattern {
                    name: "entry".into(),
                    attrs: vec![],
                    content: vec![PatSlot::Col("b".into())],
                },
                out: "col5".into(),
            },
            base,
        );
        annotate(&mut p).unwrap();
        let c = p.schema.col("col5").unwrap();
        assert_eq!(c.cxt.lng, LngSpec::SelfRef);
        assert_eq!(c.cxt.ord, OrdSpec::Empty);
    }

    #[test]
    fn xml_union_branches_lineage() {
        let base = Plan::unary(
            OpKind::NavUnnest {
                col: "S1".into(),
                steps: vec![step("bib"), step("book")],
                out: "b".into(),
            },
            src("bib.xml", "S1"),
        );
        let t = Plan::unary(
            OpKind::NavCollection { col: "b".into(), steps: vec![step("title")], out: "c2".into() },
            base,
        );
        let a = Plan::unary(
            OpKind::NavCollection {
                col: "b".into(),
                steps: vec![step("author")],
                out: "c3".into(),
            },
            t,
        );
        let mut p =
            Plan::unary(OpKind::XmlUnion { a: "c2".into(), b: "c3".into(), out: "c4".into() }, a);
        annotate(&mut p).unwrap();
        let c = p.schema.col("c4").unwrap();
        let LngSpec::Cols(lc) = &c.cxt.lng else { panic!() };
        assert_eq!(lc.len(), 2, "both resolve to $b but branch keys distinguish: {lc:?}");
        assert!(lc[0].branch.is_some() && lc[1].branch.is_some());
        assert_ne!(lc[0].branch, lc[1].branch);
    }

    #[test]
    fn delta_source_substitution() {
        let mut p = Plan::binary(OpKind::Cartesian, src("bib.xml", "S1"), src("prices.xml", "S2"));
        annotate(&mut p).unwrap();
        let d = p.with_delta_source("bib.xml");
        assert!(matches!(d.children[0].op, OpKind::DeltaSource { .. }));
        assert!(matches!(d.children[1].op, OpKind::Source { .. }));
        assert_eq!(p.source_docs(), vec!["bib.xml", "prices.xml"]);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let mut p = Plan::unary(
            OpKind::NavUnnest { col: "nope".into(), steps: vec![step("x")], out: "o".into() },
            src("bib.xml", "S1"),
        );
        assert!(annotate(&mut p).is_err());
    }

    #[test]
    fn descendant_axis_formats() {
        let s = fmt_steps(&[Step {
            axis: Axis::Descendant,
            test: NodeTest::Name("person".into()),
            predicate: None,
        }]);
        assert_eq!(s, "//person");
    }
}
