//! Materialized view extents.
//!
//! A [`ViewExtent`] is the materialized XML result of a view: a tree of
//! [`VNode`]s, each carrying a semantic identifier (Ch. 4), a derivation
//! count (Ch. 6) and children kept **sorted by semantic-id order** — the
//! final (partial) sort the order solution defers to result-generation time
//! (§3.3.3).
//!
//! Building an extent from executor output *is* the identifier-based XML
//! fusion of §4.4: per-tuple result fragments are deep-unioned by semantic
//! id, counts summing. The same [`deep_union_siblings`] drives the Apply phase
//! (Ch. 8): delta trees produced by incremental maintenance plans carry
//! signed counts, nodes vanish when their count reaches zero, and a whole
//! fragment disappears by disconnecting its root (§8.3.2) — descendants are
//! never visited one by one.

use crate::exec::{ExecError, Executor};
use crate::value::{Item, ItemRef};
use flexkey::semid::SemBody;
use flexkey::{FlexKey, OrdPrefix, SemId};
use std::time::Instant;
use xmlstore::{Frag, NodeData, Store};

/// One node of a materialized view extent.
#[derive(Clone, Debug, PartialEq)]
pub struct VNode {
    pub sem: SemId,
    pub data: NodeData,
    /// Derivation count (Ch. 6). Positive in materialized extents; delta
    /// trees use negative counts for deletions.
    pub count: i64,
    /// Children in result order (sorted by semantic-id sort key).
    pub children: Vec<VNode>,
}

impl VNode {
    pub fn new(sem: SemId, data: NodeData) -> VNode {
        VNode { sem, data, count: 1, children: Vec::new() }
    }

    /// Total node count of the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(VNode::size).sum::<usize>()
    }

    /// Serialize this subtree to XML text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    fn write_xml(&self, out: &mut String) {
        match &self.data {
            NodeData::Text { value } => out.push_str(&xmlstore::frag::escape_text(value)),
            NodeData::Element { name, attrs } => {
                out.push('<');
                out.push_str(name);
                for (k, v) in attrs {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&xmlstore::frag::escape_attr(v));
                    out.push('"');
                }
                if self.children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in &self.children {
                        c.write_xml(out);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
        }
    }

    /// Find a direct child by semantic-id identity (body).
    pub fn child_by_identity(&self, body: &SemBody) -> Option<&VNode> {
        self.children.iter().find(|c| c.sem.identity() == body)
    }

    /// Find a descendant element by tag name (testing helper).
    pub fn find_element(&self, name: &str) -> Option<&VNode> {
        if self.data.name() == Some(name) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find_element(name))
    }

    /// Concatenated text of the subtree.
    pub fn string_value(&self) -> String {
        match &self.data {
            NodeData::Text { value } => value.clone(),
            NodeData::Element { .. } => self.children.iter().map(VNode::string_value).collect(),
        }
    }
}

/// A materialized view extent: the (usually single-rooted) result forest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ViewExtent {
    pub roots: Vec<VNode>,
}

impl ViewExtent {
    /// Serialize the extent to XML text (roots in order).
    pub fn to_xml(&self) -> String {
        self.roots.iter().map(VNode::to_xml).collect()
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        self.roots.iter().map(VNode::size).sum()
    }

    /// The single root, if the extent has exactly one.
    pub fn root(&self) -> Option<&VNode> {
        if self.roots.len() == 1 {
            self.roots.first()
        } else {
            None
        }
    }
}

impl Executor<'_> {
    /// Materialize the items of the final table's column into a view extent.
    ///
    /// This performs the only sorting in the whole pipeline (§3.3.3): each
    /// collection is sorted by semantic-id order as it is de-referenced —
    /// typically a partial sort of small sibling lists — and base fragments
    /// come back from the storage manager already in document order.
    pub fn materialize(&mut self, items: &[Item]) -> Result<ViewExtent, ExecError> {
        let mut roots: Vec<VNode> = Vec::new();
        let mut nodes = Vec::with_capacity(items.len());
        for it in items {
            nodes.push(self.materialize_item(it, 1, false)?);
        }
        let t0 = Instant::now();
        union_many(&mut roots, nodes, false);
        self.stats.final_sort += t0.elapsed();
        Ok(ViewExtent { roots })
    }

    /// Materialize a **delta update tree** (Ch. 7's propagation output):
    /// like [`Executor::materialize`], but negative-count nodes (deletions)
    /// are kept, and fusion sums signed counts. A node cancelling to count 0
    /// survives as a carrier when it still has child deltas to deliver.
    pub fn materialize_signed(&mut self, items: &[Item]) -> Result<ViewExtent, ExecError> {
        let mut roots: Vec<VNode> = Vec::new();
        let mut nodes = Vec::with_capacity(items.len());
        for it in items {
            nodes.push(self.materialize_item(it, 1, true)?);
        }
        union_many(&mut roots, nodes, true);
        Ok(ViewExtent { roots })
    }

    /// Materialize one item. `inherited` is the parent node's effective
    /// derivation count: a node's count is `inherited × item.count` unless
    /// the item is *absolute* (Combine already multiplied in the tuple
    /// count, which may have changed again after the node was constructed —
    /// Table 6.1's product rule, applied at the right point).
    fn materialize_item(
        &mut self,
        item: &Item,
        inherited: i64,
        signed: bool,
    ) -> Result<VNode, ExecError> {
        let eff = if item.abs { item.count } else { inherited * item.count };
        match &item.r {
            ItemRef::Base(k) => {
                // Deep-copy honoring the item's navigation mode: a pre-state
                // derivation (`Exclude`) must not include nodes that only
                // exist in the post-state update fragments, and vice versa
                // the fragment-only copy stays within them.
                let excluded = self.excluded_under(k, item.delta);
                let mut n = base_vnode(self.store, k, eff, &excluded)
                    .ok_or_else(|| ExecError(format!("dangling base key {k}")))?;
                apply_item_ord(&mut n, item);
                Ok(n)
            }
            ItemRef::Val(v) => {
                let mut n = VNode {
                    sem: SemId::constructed(vec![flexkey::LngAtom::Val(v.0.clone())]),
                    data: NodeData::text(v.0.clone()),
                    count: eff,
                    children: Vec::new(),
                };
                apply_item_ord(&mut n, item);
                Ok(n)
            }
            ItemRef::Cons(id) => {
                let cons = self.cons_node(*id).clone();
                let mut node = VNode {
                    sem: cons.sem.clone(),
                    data: NodeData::Element { name: cons.name.clone(), attrs: cons.attrs.clone() },
                    count: eff,
                    children: Vec::new(),
                };
                let mut kids = Vec::with_capacity(cons.children.len());
                for child in &cons.children {
                    kids.push(self.materialize_item(child, eff, signed)?);
                }
                let t0 = Instant::now();
                union_many(&mut node.children, kids, signed);
                self.stats.final_sort += t0.elapsed();
                apply_item_ord(&mut node, item);
                Ok(node)
            }
        }
    }
}

/// Position a materialized node by the item's effective overriding order.
fn apply_item_ord(n: &mut VNode, item: &Item) {
    if let Some(ord) = &item.ord {
        n.sem.ord = OrdPrefix::Over(ord.clone());
    }
}

/// Deep-copy a base subtree from the store in document order (no sorting —
/// the storage manager returns children ordered, §3.3), skipping the
/// `excluded` subtrees (pre-state copies during delta materialization).
fn base_vnode(store: &Store, key: &FlexKey, count: i64, excluded: &[FlexKey]) -> Option<VNode> {
    let node = store.node(key)?;
    let mut out = VNode {
        sem: SemId::base(key.clone()),
        data: node.data.clone(),
        count: count * node.count,
        children: Vec::new(),
    };
    for (ck, _) in store.children(key) {
        if excluded.iter().any(|f| f.is_self_or_ancestor_of(&ck)) {
            continue;
        }
        out.children.push(base_vnode(store, &ck, count, excluded)?);
    }
    Some(out)
}

/// Convert a keyless fragment into extent nodes (used by delta application
/// tests and the quickstart oracle).
pub fn vnode_from_frag(frag: &Frag, key: &FlexKey) -> VNode {
    let mut out = VNode {
        sem: SemId::base(key.clone()),
        data: frag.data.clone(),
        count: frag.count,
        children: Vec::new(),
    };
    for (i, c) in frag.children.iter().enumerate() {
        out.children.push(vnode_from_frag(c, &key.nth_child(i)));
    }
    out
}

/// Insert `incoming` into a sorted sibling list, **fusing by semantic-id
/// identity** (§4.4): if a sibling with the same id body exists, counts sum
/// and children deep-union recursively; otherwise the node is inserted at
/// its order position (binary search on the semantic-id sort key).
///
/// This is the count-aware Deep Union (§6.6): after unioning, any node whose
/// count dropped to ≤ 0 is removed *as a whole fragment* — its root is
/// disconnected without visiting descendants (§8.3.2).
pub fn deep_union_siblings(siblings: &mut Vec<VNode>, incoming: VNode) {
    if let Some(pos) = siblings.iter().position(|s| s.sem.identity() == incoming.sem.identity()) {
        let mut existing = siblings.remove(pos);
        existing.count += incoming.count;
        if existing.count <= 0 {
            // Root disconnect: the entire fragment goes at once (§8.3.2).
            return;
        }
        if incoming.count >= 0 {
            // Refresh data and order position from the incoming derivation.
            // Zero-count carriers refresh too: a modify nets ±0 on the node
            // while carrying its post-state content (attributes, order).
            existing.sem = incoming.sem;
            existing.data = incoming.data;
        }
        for c in incoming.children {
            deep_union_siblings(&mut existing.children, c);
        }
        let at = insertion_point(siblings, &existing.sem);
        siblings.insert(at, existing);
    } else if incoming.count > 0 {
        let at = insertion_point(siblings, &incoming.sem);
        siblings.insert(at, incoming);
    }
    // A pure deletion (count ≤ 0) of a node that does not exist is a no-op:
    // the update was already reflected or is irrelevant.
}

/// Union used *inside delta trees*: counts sum with their signs, negative
/// and zero-count nodes are preserved (a zero-count node is a carrier whose
/// children still deliver deltas), and nothing is removed — removal is the
/// Apply phase's job via [`deep_union_siblings`].
pub fn signed_union_siblings(siblings: &mut Vec<VNode>, incoming: VNode) {
    if let Some(pos) = siblings.iter().position(|s| s.sem.identity() == incoming.sem.identity()) {
        let mut existing = siblings.remove(pos);
        existing.count += incoming.count;
        if incoming.count >= 0 {
            existing.sem = incoming.sem;
            existing.data = incoming.data;
        }
        for c in incoming.children {
            signed_union_siblings(&mut existing.children, c);
        }
        let at = insertion_point(siblings, &existing.sem);
        siblings.insert(at, existing);
    } else {
        let at = insertion_point(siblings, &incoming.sem);
        siblings.insert(at, incoming);
    }
}

fn insertion_point(siblings: &[VNode], sem: &SemId) -> usize {
    siblings.partition_point(|s| s.sem < *sem)
}

/// Batched deep union: fuse a whole list of incoming nodes into a sibling
/// list. Equivalent to repeated [`deep_union_siblings`] /
/// [`signed_union_siblings`] calls when the incoming nodes have distinct
/// identities (which delta trees and materialization streams guarantee),
/// but uses a hash index over identities so large sibling lists fuse in
/// near-linear time instead of O(m·n).
pub fn union_many(siblings: &mut Vec<VNode>, incoming: Vec<VNode>, signed: bool) {
    if incoming.is_empty() {
        return;
    }
    if siblings.len() + incoming.len() < 48 {
        for n in incoming {
            if signed {
                signed_union_siblings(siblings, n);
            } else {
                deep_union_siblings(siblings, n);
            }
        }
        return;
    }
    let mut store: Vec<VNode> = std::mem::take(siblings);
    let mut index: std::collections::HashMap<SemBody, usize> =
        store.iter().enumerate().map(|(i, n)| (n.sem.identity().clone(), i)).collect();
    for inc in incoming {
        match index.get(inc.sem.identity()) {
            Some(&i) => {
                let ex = &mut store[i];
                ex.count += inc.count;
                if inc.count >= 0 {
                    ex.sem = inc.sem;
                    ex.data = inc.data;
                }
                union_many(&mut ex.children, inc.children, signed);
            }
            None => {
                if signed || inc.count > 0 {
                    index.insert(inc.sem.identity().clone(), store.len());
                    store.push(inc);
                }
            }
        }
    }
    if signed {
        store.retain(|n| n.count != 0 || !n.children.is_empty());
    } else {
        store.retain(|n| n.count > 0);
    }
    store.sort_by(|a, b| a.sem.cmp(&b.sem));
    *siblings = store;
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexkey::{LngAtom, OrdAtom, OrdKey};

    fn elem(name: &str, sem: SemId) -> VNode {
        VNode::new(sem, NodeData::element(name))
    }

    fn cons_id(v: &str) -> SemId {
        SemId::constructed(vec![LngAtom::Val(v.into())])
    }

    fn with_ord(sem: SemId, v: &str) -> SemId {
        sem.with_ord(OrdKey::from_atom(OrdAtom::text(v)))
    }

    #[test]
    fn deep_union_inserts_in_order() {
        let mut sibs = Vec::new();
        deep_union_siblings(&mut sibs, elem("g", with_ord(cons_id("2000"), "2000")));
        deep_union_siblings(&mut sibs, elem("g", with_ord(cons_id("1994"), "1994")));
        deep_union_siblings(&mut sibs, elem("g", with_ord(cons_id("1997"), "1997")));
        let ids: Vec<String> = sibs.iter().map(|s| s.sem.to_string()).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids[0].contains("1994") && ids[1].contains("1997") && ids[2].contains("2000"));
    }

    #[test]
    fn deep_union_fuses_same_identity_and_sums_counts() {
        let mut sibs = Vec::new();
        let mut a = elem("g", cons_id("1994"));
        a.children.push(elem("x", cons_id("x1")));
        deep_union_siblings(&mut sibs, a);
        let mut b = elem("g", cons_id("1994"));
        b.children.push(elem("x", cons_id("x2")));
        deep_union_siblings(&mut sibs, b);
        assert_eq!(sibs.len(), 1, "same identity fused");
        assert_eq!(sibs[0].count, 2, "counts summed");
        assert_eq!(sibs[0].children.len(), 2, "children unioned");
    }

    #[test]
    fn deep_union_negative_count_deletes_whole_fragment() {
        let mut sibs = Vec::new();
        let mut tree = elem("g", cons_id("2000"));
        tree.children.push(elem("big", cons_id("sub")));
        tree.children[0].children.push(elem("deep", cons_id("deep")));
        deep_union_siblings(&mut sibs, tree);
        assert_eq!(sibs.len(), 1);
        // A delete delta only carries the root with count −1: the entire
        // fragment disconnects without touching descendants (§8.3.2).
        let mut del = elem("g", cons_id("2000"));
        del.count = -1;
        deep_union_siblings(&mut sibs, del);
        assert!(sibs.is_empty());
    }

    #[test]
    fn deep_union_decrement_keeps_multiderived_node() {
        // A yGroup derived from two books survives deleting one (§1.2).
        let mut sibs = Vec::new();
        let mut g = elem("g", cons_id("1994"));
        g.count = 2;
        deep_union_siblings(&mut sibs, g);
        let mut del = elem("g", cons_id("1994"));
        del.count = -1;
        deep_union_siblings(&mut sibs, del);
        assert_eq!(sibs.len(), 1);
        assert_eq!(sibs[0].count, 1);
    }

    #[test]
    fn delete_of_absent_node_is_noop() {
        let mut sibs = vec![elem("g", cons_id("1994"))];
        let mut del = elem("g", cons_id("2000"));
        del.count = -1;
        deep_union_siblings(&mut sibs, del);
        assert_eq!(sibs.len(), 1);
    }

    #[test]
    fn serialization() {
        let mut root = elem("result", cons_id("r"));
        let mut g = elem("yGroup", cons_id("1994"));
        if let NodeData::Element { attrs, .. } = &mut g.data {
            attrs.push(("Y".into(), "1994".into()));
        }
        g.children.push(VNode::new(cons_id("t"), NodeData::text("hi & <bye>")));
        root.children.push(g);
        assert_eq!(
            root.to_xml(),
            r#"<result><yGroup Y="1994">hi &amp; &lt;bye&gt;</yGroup></result>"#
        );
        let ext = ViewExtent { roots: vec![root] };
        assert_eq!(ext.size(), 3);
        assert!(ext.root().is_some());
    }

    #[test]
    fn vnode_from_frag_preserves_structure() {
        let f = Frag::elem("book").attr("year", "1994").child(Frag::elem("title").text_child("X"));
        let v = vnode_from_frag(&f, &FlexKey::parse("q").unwrap());
        assert_eq!(v.size(), 3);
        assert_eq!(v.string_value(), "X");
        assert_eq!(v.find_element("title").unwrap().string_value(), "X");
    }
}
