//! Context Schemas (Chapter 4, §4.2): schema-level lineage + order
//! specifications for every XAT table column, from which semantic
//! identifiers are generated during execution.
//!
//! A column's [`ContextSchema`] is `(Order)? + Lineage` (Definition 4.2.2):
//!
//! * [`OrdSpec`] — how the order of the column's nodes is derived:
//!   `Empty` (`()`) means "from the lineage/identity itself", `Null` (absent)
//!   means no order is defined, `Cols` lists order-determining columns.
//! * [`LngSpec`] — how lineage is derived: `SelfRef` (`[]`) means the nodes
//!   carry their own identity, `Star` (`[*]`) is the Combine "All" lineage,
//!   `Cols` lists lineage columns, optionally annotated with XML Union
//!   column-id keys (`$b{a}, $e{b}`).
//!
//! The computation rules per operator (Table 4.1) live in
//! [`crate::plan::annotate`]; this module defines the types, the ECC
//! (Evaluation Context Columns, Definition 4.2.3), and tuple matching
//! (Definition 4.2.4).

use flexkey::Seg;
use std::fmt;

/// Order part of a Context Schema.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum OrdSpec {
    /// No order is defined for the column (`ord == null` in the paper).
    #[default]
    Null,
    /// `()` — order is derivable from the lineage specification itself.
    Empty,
    /// `(col1, col2, …)` — order determined by these columns' cells.
    Cols(Vec<String>),
}

impl OrdSpec {
    pub fn is_null(&self) -> bool {
        matches!(self, OrdSpec::Null)
    }

    pub fn is_empty_spec(&self) -> bool {
        matches!(self, OrdSpec::Empty)
    }

    /// Column names referenced by the spec.
    pub fn cols(&self) -> &[String] {
        match self {
            OrdSpec::Cols(c) => c,
            _ => &[],
        }
    }

    /// Concatenate two order specs (used by the join rules of Table 4.1
    /// category IX, composing a column's own order with the other side's
    /// Table Order Schema).
    pub fn concat(a: &OrdSpec, b: &OrdSpec) -> OrdSpec {
        match (a, b) {
            (OrdSpec::Null, x) | (x, OrdSpec::Null) => x.clone(),
            (OrdSpec::Empty, OrdSpec::Empty) => OrdSpec::Empty,
            _ => {
                let mut cols: Vec<String> = a.cols().to_vec();
                for c in b.cols() {
                    if !cols.contains(c) {
                        cols.push(c.clone());
                    }
                }
                if cols.is_empty() {
                    OrdSpec::Empty
                } else {
                    OrdSpec::Cols(cols)
                }
            }
        }
    }
}

impl fmt::Display for OrdSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrdSpec::Null => Ok(()),
            OrdSpec::Empty => write!(f, "()"),
            OrdSpec::Cols(c) => write!(f, "({})", c.join(",")),
        }
    }
}

/// One lineage column reference, optionally annotated with an XML Union
/// column-id key (`$b{a}`): the key distinguishes and orders union branches
/// (§4.2.2 category VII).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LngCol {
    pub col: String,
    pub branch: Option<Seg>,
}

impl LngCol {
    pub fn plain(col: impl Into<String>) -> LngCol {
        LngCol { col: col.into(), branch: None }
    }

    pub fn branched(col: impl Into<String>, branch: Seg) -> LngCol {
        LngCol { col: col.into(), branch: Some(branch) }
    }
}

impl fmt::Display for LngCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.branch {
            Some(b) => write!(f, "${}{{{b}}}", self.col),
            None => write!(f, "${}", self.col),
        }
    }
}

/// Lineage part of a Context Schema.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum LngSpec {
    /// `[]` — self lineage: nodes in the column carry their own identity
    /// (source nodes by FlexKey, constructed nodes by their assigned id).
    #[default]
    SelfRef,
    /// `[*]` — the Combine "All" lineage: the single collection is derived
    /// from everything (§4.2.1 case 3).
    Star,
    /// `[col1, col2{b}, …]` — lineage derived from other columns' cells.
    Cols(Vec<LngCol>),
}

impl LngSpec {
    pub fn is_self(&self) -> bool {
        matches!(self, LngSpec::SelfRef)
    }

    pub fn cols(&self) -> &[LngCol] {
        match self {
            LngSpec::Cols(c) => c,
            _ => &[],
        }
    }
}

impl fmt::Display for LngSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LngSpec::SelfRef => write!(f, "[]"),
            LngSpec::Star => write!(f, "[*]"),
            LngSpec::Cols(cs) => {
                write!(f, "[")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// The Context Schema of one column (Definition 4.2.2).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ContextSchema {
    pub ord: OrdSpec,
    pub lng: LngSpec,
}

impl ContextSchema {
    /// `()[]` — the Source-operator schema (Table 4.1 category I).
    pub fn source() -> ContextSchema {
        ContextSchema { ord: OrdSpec::Empty, lng: LngSpec::SelfRef }
    }

    pub fn new(ord: OrdSpec, lng: LngSpec) -> ContextSchema {
        ContextSchema { ord, lng }
    }

    /// True if this column belongs to the ECC (Definition 4.2.3): its
    /// lineage references only itself.
    pub fn in_ecc(&self) -> bool {
        self.lng.is_self()
    }
}

impl fmt::Display for ContextSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.ord, self.lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ContextSchema::source().to_string(), "()[]");
        let c = ContextSchema::new(
            OrdSpec::Cols(vec!["b".into(), "e".into()]),
            LngSpec::Cols(vec![LngCol::plain("b")]),
        );
        assert_eq!(c.to_string(), "(b,e)[$b]");
        let u = ContextSchema::new(
            OrdSpec::Empty,
            LngSpec::Cols(vec![
                LngCol::branched("b", Seg::parse("b").unwrap()),
                LngCol::branched("e", Seg::parse("c").unwrap()),
            ]),
        );
        assert_eq!(u.to_string(), "()[$b{b},$e{c}]");
        let star = ContextSchema::new(OrdSpec::Null, LngSpec::Star);
        assert_eq!(star.to_string(), "[*]");
    }

    #[test]
    fn ecc_membership() {
        assert!(ContextSchema::source().in_ecc());
        assert!(!ContextSchema::new(OrdSpec::Null, LngSpec::Star).in_ecc());
        assert!(
            !ContextSchema::new(OrdSpec::Empty, LngSpec::Cols(vec![LngCol::plain("y")])).in_ecc()
        );
    }

    #[test]
    fn ord_concat() {
        let a = OrdSpec::Cols(vec!["b".into()]);
        let b = OrdSpec::Cols(vec!["e".into()]);
        assert_eq!(OrdSpec::concat(&a, &b), OrdSpec::Cols(vec!["b".into(), "e".into()]));
        assert_eq!(OrdSpec::concat(&OrdSpec::Empty, &OrdSpec::Empty), OrdSpec::Empty);
        assert_eq!(OrdSpec::concat(&OrdSpec::Null, &a), a);
        // Duplicate columns removed ("removing the redundant $b", §4.2.3).
        let dup = OrdSpec::concat(&a, &OrdSpec::Cols(vec!["b".into(), "e".into()]));
        assert_eq!(dup, OrdSpec::Cols(vec!["b".into(), "e".into()]));
    }
}
