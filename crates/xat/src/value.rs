//! Values flowing through XAT tables: atomic values, node references, items
//! (node reference + overriding order + count), and cells.

use flexkey::{FlexKey, OrdAtom, OrdKey};
use std::cmp::Ordering;
use std::fmt;

/// An atomic (typeless) value, kept textual as in the paper's data model
/// ("atomic values are treated as text nodes", §2.2.1). Comparisons are
/// numeric when both sides parse as numbers, textual otherwise — XQuery's
/// untyped-data comparison behaviour for the subset used here.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atomic(pub String);

impl Atomic {
    pub fn new(s: impl Into<String>) -> Atomic {
        Atomic(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    pub fn as_num(&self) -> Option<f64> {
        self.0.trim().parse::<f64>().ok()
    }

    /// Value comparison with numeric coercion.
    pub fn val_cmp(&self, other: &Atomic) -> Ordering {
        match (self.as_num(), other.as_num()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            _ => self.0.cmp(&other.0),
        }
    }

    /// An order atom encoding this value (numeric encoding when numeric, so
    /// `order by` over numbers sorts numerically).
    pub fn ord_atom(&self) -> OrdAtom {
        match self.as_num() {
            Some(n) => OrdAtom::num(n),
            None => OrdAtom::text(&self.0),
        }
    }
}

impl fmt::Display for Atomic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A reference to an XML node (or value) held in a cell.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ItemRef {
    /// A base node in the storage manager, by FlexKey.
    Base(FlexKey),
    /// A constructed node in the executor's result arena.
    Cons(ConsId),
    /// An atomic value (attribute/text navigation results, distinct values,
    /// aggregates).
    Val(Atomic),
}

/// Index of a constructed node in the executor's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConsId(pub u32);

/// An item: a node reference with an optional overriding order (§3.3.2) and a
/// derivation count (Ch. 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    pub r: ItemRef,
    /// Overriding order — when set, this (not the node identity) positions
    /// the item among its peers.
    pub ord: Option<OrdKey>,
    /// Derivation count (Table 6.1). Items inside tuple cells carry counts
    /// *relative to one derivation of their tuple* (usually 1); once Combine
    /// or a grouping Combine multiplies in the tuple count, the item becomes
    /// *absolute* (`abs` set) — its count is the node's full derivation
    /// count, negative for delete deltas.
    pub count: i64,
    /// True once `count` is an absolute derivation count (set by Combine).
    pub abs: bool,
    /// How navigation from this item treats the registered update fragments
    /// (see [`NavMode`]). Per-item — not per-document — so one IMP term can
    /// mix a ΔS occurrence with S-pre / S-post occurrences of the same
    /// document (§7.2/§7.5: views with multiple operators and self joins).
    pub delta: NavMode,
}

/// Navigation mode with respect to the registered update fragments.
///
/// The telescoped propagation of Chapter 7 needs three views of one stored
/// document: the delta itself, the pre-update state, and the post-update
/// state. With the store holding one physical state, the other two are
/// *navigation modes*: `DeltaOnly` walks only paths into the fragments
/// (the batch update tree, Ch. 5), `Exclude` walks everything but them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NavMode {
    /// Ordinary navigation over the stored state.
    #[default]
    Free,
    /// Only paths leading into / inside update fragments (ΔS).
    DeltaOnly,
    /// Everything except the update fragments (the state "on the other side"
    /// of the update: pre for inserts, post for deletes).
    Exclude,
}

impl Item {
    pub fn base(key: FlexKey) -> Item {
        Item { r: ItemRef::Base(key), ord: None, count: 1, abs: false, delta: NavMode::Free }
    }

    pub fn cons(id: ConsId) -> Item {
        Item { r: ItemRef::Cons(id), ord: None, count: 1, abs: false, delta: NavMode::Free }
    }

    pub fn val(v: impl Into<String>) -> Item {
        Item {
            r: ItemRef::Val(Atomic::new(v)),
            ord: None,
            count: 1,
            abs: false,
            delta: NavMode::Free,
        }
    }

    pub fn with_count(mut self, count: i64) -> Item {
        self.count = count;
        self
    }

    /// The order this item sorts by: the overriding order if present,
    /// otherwise an order derived from the reference itself (document order
    /// for base nodes; values sort after keyed nodes deterministically).
    pub fn order(&self) -> OrdKey {
        match &self.ord {
            Some(o) => o.clone(),
            None => match &self.r {
                ItemRef::Base(k) => OrdKey::from(k.clone()),
                ItemRef::Val(v) => OrdKey::from_atom(v.ord_atom()),
                ItemRef::Cons(id) => OrdKey::from_atom(OrdAtom::Bytes(id.0.to_be_bytes().to_vec())),
            },
        }
    }

    /// Prefix this item's effective order (XML Union column-id semantics,
    /// §3.3.2 / Fig 4.5).
    pub fn prefix_ord(&mut self, prefix: OrdAtom) {
        let current = self.order();
        let mut atoms = vec![prefix];
        atoms.extend(current.into_atoms());
        self.ord = Some(OrdKey::new(atoms));
    }

    /// The base FlexKey if this is a base-node item.
    pub fn as_base(&self) -> Option<&FlexKey> {
        match &self.r {
            ItemRef::Base(k) => Some(k),
            _ => None,
        }
    }

    pub fn as_val(&self) -> Option<&Atomic> {
        match &self.r {
            ItemRef::Val(v) => Some(v),
            _ => None,
        }
    }
}

/// A cell of an XAT table: empty, a single item, or a sequence of items.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Cell {
    #[default]
    Null,
    One(Item),
    Seq(Vec<Item>),
}

impl Cell {
    pub fn one(item: Item) -> Cell {
        Cell::One(item)
    }

    pub fn seq(items: Vec<Item>) -> Cell {
        Cell::Seq(items)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Items contained in this cell (empty for `Null`).
    pub fn items(&self) -> &[Item] {
        match self {
            Cell::Null => &[],
            Cell::One(i) => std::slice::from_ref(i),
            Cell::Seq(v) => v,
        }
    }

    pub fn into_items(self) -> Vec<Item> {
        match self {
            Cell::Null => Vec::new(),
            Cell::One(i) => vec![i],
            Cell::Seq(v) => v,
        }
    }

    /// The single item, if this cell holds exactly one.
    pub fn as_one(&self) -> Option<&Item> {
        match self {
            Cell::One(i) => Some(i),
            Cell::Seq(v) if v.len() == 1 => v.first(),
            _ => None,
        }
    }

    /// Equality for ECC tuple matching (Definition 4.2.4 + Proposition
    /// 4.2.1): by node identity for keyed nodes, by value for values; two
    /// nulls match.
    pub fn ecc_eq(&self, other: &Cell) -> bool {
        match (self, other) {
            (Cell::Null, Cell::Null) => true,
            (a, b) => {
                let (ia, ib) = (a.items(), b.items());
                ia.len() == ib.len() && ia.iter().zip(ib).all(|(x, y)| x.r == y.r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> FlexKey {
        FlexKey::parse(s).unwrap()
    }

    #[test]
    fn atomic_numeric_and_text_comparison() {
        assert_eq!(Atomic::new("39.95").val_cmp(&Atomic::new("65.95")), Ordering::Less);
        assert_eq!(Atomic::new("100").val_cmp(&Atomic::new("20")), Ordering::Greater);
        assert_eq!(Atomic::new("abc").val_cmp(&Atomic::new("abd")), Ordering::Less);
        // Mixed falls back to text.
        assert_eq!(Atomic::new("10").val_cmp(&Atomic::new("x")), Ordering::Less);
        assert_eq!(Atomic::new("1994").val_cmp(&Atomic::new("1994")), Ordering::Equal);
    }

    #[test]
    fn item_order_uses_overriding_order() {
        let mut a = Item::base(k("b.f"));
        let b = Item::base(k("b.b"));
        assert!(a.order() > b.order());
        a.ord = Some(OrdKey::from(k("b")));
        assert!(a.order() < b.order());
    }

    #[test]
    fn prefix_ord_composes() {
        let mut i = Item::base(k("b.f"));
        i.prefix_ord(OrdAtom::Key(k("b")));
        assert_eq!(i.order().atoms().len(), 2);
        // Prefixing again extends at the front.
        i.prefix_ord(OrdAtom::Key(k("c")));
        assert_eq!(i.order().atoms().len(), 3);
        assert_eq!(i.order().atoms()[0], OrdAtom::Key(k("c")));
    }

    #[test]
    fn cell_item_access() {
        let c = Cell::seq(vec![Item::val("a"), Item::val("b")]);
        assert_eq!(c.items().len(), 2);
        assert!(c.as_one().is_none());
        let d = Cell::one(Item::val("x"));
        assert_eq!(d.as_one().unwrap().as_val().unwrap().as_str(), "x");
        assert!(Cell::Null.items().is_empty());
    }

    #[test]
    fn ecc_equality() {
        let a = Cell::one(Item::base(k("b.b")));
        let b = Cell::one(Item::base(k("b.b")).with_count(5));
        assert!(a.ecc_eq(&b), "counts and order do not affect identity");
        let c = Cell::one(Item::base(k("b.f")));
        assert!(!a.ecc_eq(&c));
        assert!(Cell::Null.ecc_eq(&Cell::Null), "null matches null (Prop 4.2.1)");
        assert!(!Cell::Null.ecc_eq(&a));
        let v1 = Cell::one(Item::val("1994"));
        let v2 = Cell::one(Item::val("1994"));
        assert!(v1.ecc_eq(&v2), "value columns match by value");
    }
}
