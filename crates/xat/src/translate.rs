//! XQuery → XAT translation (§2.3), decorrelated.
//!
//! The translator produces the canonical plan shapes of the paper:
//!
//! * XPath expressions become Navigate operators; comparison predicates are
//!   already `where` conjuncts after normalization (§2.3.2 / Rule 3).
//! * A flat FLWOR block becomes a *binding plan* — Sources + Navigate
//!   Unnests joined on `where` equality conjuncts (the nesting of `for`
//!   variables fixes the join order and hence the major/minor order
//!   semantics, §3.2) — followed by Selects for the remaining local
//!   predicates and a per-tuple translation of the `return` clause.
//! * A **correlated** FLWOR nested in a `return` clause is decorrelated
//!   directly into the Fig 2.2 shape: the inner block is planned
//!   independently, the correlation predicate becomes a **Left Outer Join**
//!   between the outer binding table and the inner plan, and a value-based
//!   **GroupBy** over the outer tuple's columns nests the inner results.
//!   This is the result of rewriting away the Map operator of Fig 2.3
//!   (§2.4's decorrelation).
//! * `order by` injects an OrderBy just before the outermost Tagger of the
//!   return clause (Fig 2.2 places τ between operators #16 and #18).
//!
//! Paths that *unnest elements* and then *dereference values*
//! (`bib/book/@year`) are split into separate Navigate Unnests so each
//! operator obeys exactly one Order-Schema rule of Table 3.1.

use crate::plan::{annotate, GroupFunc, OpKind, Operand, PatSlot, Pattern, Plan, Pred};
use crate::value::Atomic;
use std::fmt;
use xquery_lang::{
    normalize, parse_query, AttrValue, BoolExpr, CmpOp, ElemCons, Expr, Flwor, NodeTest, OrderSpec,
    PathSource, Step,
};

/// Translation failure: the expression falls outside the supported subset
/// (§2.1 lists the paper's own exclusions; see README "Supported XQuery").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError(pub String);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

type TResult<T> = Result<T, TranslateError>;

/// (block plan, per-tuple return column, correlation conjuncts for the
/// caller's left outer join).
type FlworParts = (Plan, String, Vec<(Operand, CmpOp, Operand)>);

/// Parse, normalize, translate and annotate a view query. Returns the
/// annotated plan and the output column holding the result items (the plan
/// evaluates to a single tuple).
pub fn translate_query(query: &str) -> Result<(Plan, String), TranslateError> {
    let ast = parse_query(query).map_err(|e| TranslateError(e.to_string()))?;
    let ast = normalize(ast);
    let mut tr = Translator::default();
    let (mut plan, col) = tr.translate_top(&ast)?;
    annotate(&mut plan).map_err(TranslateError)?;
    Ok((plan, col))
}

#[derive(Default)]
struct Translator {
    next_col: usize,
    next_src: usize,
}

impl Translator {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_col += 1;
        format!("{}{}", prefix, self.next_col)
    }

    fn fresh_src(&mut self) -> String {
        self.next_src += 1;
        format!("S{}", self.next_src)
    }

    /// Translate a top-level expression to a single-tuple plan whose
    /// returned column holds the (combined) result items.
    fn translate_top(&mut self, e: &Expr) -> TResult<(Plan, String)> {
        match e {
            Expr::Elem(c) => {
                let unit = Plan::leaf(OpKind::Unit);
                self.translate_cons(c, unit, &[], &[])
            }
            Expr::Flwor(f) => {
                let (plan, ret_col, corr) = self.translate_flwor(f, &[])?;
                if !corr.is_empty() {
                    return Err(TranslateError("top-level FLWOR cannot be correlated".into()));
                }
                let combined = Plan::unary(OpKind::Combine { col: ret_col.clone() }, plan);
                Ok((combined, ret_col))
            }
            Expr::Path(_) | Expr::DistinctValues(_) => {
                let var = self.fresh("col");
                let (plan, col) = self.plan_binding_source(e, &var)?;
                let combined = Plan::unary(OpKind::Combine { col: col.clone() }, plan);
                Ok((combined, col))
            }
            Expr::Agg { func, arg } => {
                let (plan, col) = self.translate_top(arg)?;
                let out = self.fresh("col");
                let p = Plan::unary(OpKind::AggCol { col, func: *func, out: out.clone() }, plan);
                Ok((p, out))
            }
            other => Err(TranslateError(format!("unsupported top-level expression: {other:?}"))),
        }
    }

    /// Build the standalone plan binding one `for` variable from a
    /// doc-rooted path or `distinct-values`.
    fn plan_binding_source(&mut self, e: &Expr, var: &str) -> TResult<(Plan, String)> {
        match e {
            Expr::Path(p) => match &p.source {
                PathSource::Doc(doc) => {
                    let src_col = self.fresh_src();
                    let src = Plan::leaf(OpKind::Source { doc: doc.clone(), out: src_col.clone() });
                    let plan = self.nav_chain(src, &src_col, &p.steps, var)?;
                    Ok((plan, var.to_string()))
                }
                PathSource::Var(_) => {
                    Err(TranslateError("variable-rooted binding handled by the caller".into()))
                }
            },
            Expr::DistinctValues(inner) => {
                let (plan, col) = self.plan_binding_source(inner, var)?;
                Ok((Plan::unary(OpKind::Distinct { col: col.clone() }, plan), col))
            }
            other => Err(TranslateError(format!("unsupported for-binding source: {other:?}"))),
        }
    }

    /// Chain Navigate Unnests for a path, splitting element runs from value
    /// runs (see module docs).
    fn nav_chain(
        &mut self,
        mut plan: Plan,
        entry: &str,
        steps: &[Step],
        out: &str,
    ) -> TResult<Plan> {
        if steps.is_empty() {
            return Err(TranslateError("empty navigation path".into()));
        }
        if steps.iter().any(|s| s.predicate.is_some()) {
            return Err(TranslateError(
                "navigation predicates must be normalized away before translation".into(),
            ));
        }
        let is_val = |s: &Step| matches!(s.test, NodeTest::Attr(_) | NodeTest::Text);
        let mut runs: Vec<&[Step]> = Vec::new();
        let mut start = 0;
        for i in 1..steps.len() {
            if is_val(&steps[i]) != is_val(&steps[i - 1]) {
                runs.push(&steps[start..i]);
                start = i;
            }
        }
        runs.push(&steps[start..]);
        let n = runs.len();
        let mut col = entry.to_string();
        for (i, run) in runs.into_iter().enumerate() {
            let next = if i + 1 == n { out.to_string() } else { self.fresh("col") };
            plan = Plan::unary(
                OpKind::NavUnnest { col: col.clone(), steps: run.to_vec(), out: next.clone() },
                plan,
            );
            col = next;
        }
        Ok(plan)
    }

    /// Translate a FLWOR block. `outer_cols` are the enclosing binding
    /// plan's columns this block may correlate with. Returns (plan,
    /// per-tuple return column, correlation conjuncts for the caller's LOJ).
    fn translate_flwor(&mut self, f: &Flwor, outer_cols: &[String]) -> TResult<FlworParts> {
        if !f.lets.is_empty() {
            return Err(TranslateError("let clauses must be normalized away".into()));
        }
        let all_bound: Vec<String> = f.fors.iter().map(|b| b.var.clone()).collect();
        // Classify where-conjuncts: correlated ones reference enclosing vars.
        let mut local: Vec<&BoolExpr> = Vec::new();
        let mut corr_raw: Vec<&BoolExpr> = Vec::new();
        if let Some(w) = &f.where_ {
            for c in w.conjuncts() {
                let BoolExpr::Cmp { lhs, rhs, .. } = c else { unreachable!() };
                let mut vars = lhs.free_vars();
                vars.extend(rhs.free_vars());
                if vars.iter().any(|v| !all_bound.contains(v) && outer_cols.contains(v)) {
                    corr_raw.push(c);
                } else {
                    local.push(c);
                }
            }
        }
        // Binding plan.
        let mut bound: Vec<String> = Vec::new();
        let mut plan: Option<Plan> = None;
        let mut pending = local;
        for b in &f.fors {
            if let Some((v, steps)) = b.source.as_var_path() {
                if bound.contains(&v.to_string()) {
                    // Dependent navigation extends the current plan directly.
                    let base = plan.take().ok_or_else(|| {
                        TranslateError(format!("binding ${} before its base ${v}", b.var))
                    })?;
                    plan = Some(self.nav_chain(base, v, steps, &b.var)?);
                    bound.push(b.var.clone());
                    continue;
                }
                if outer_cols.contains(&v.to_string()) {
                    return Err(TranslateError(
                        "correlated for-binding sources unsupported; correlate via where".into(),
                    ));
                }
            }
            let (sub, _col) = self.plan_binding_source(&b.source, &b.var)?;
            plan = Some(match plan.take() {
                None => sub,
                Some(left) => {
                    let left_cols = bound.clone();
                    let right_cols = vec![b.var.clone()];
                    let mut join_pred = Pred::default();
                    let mut rest = Vec::new();
                    for c in pending.drain(..) {
                        match self.spanning_conjunct(c, &left_cols, &right_cols)? {
                            Some(cj) => join_pred.conjuncts.push(cj),
                            None => rest.push(c),
                        }
                    }
                    pending = rest;
                    if join_pred.conjuncts.is_empty() {
                        Plan::binary(OpKind::Cartesian, left, sub)
                    } else {
                        Plan::binary(OpKind::Join { pred: join_pred }, left, sub)
                    }
                }
            });
            bound.push(b.var.clone());
        }
        let mut plan = plan.ok_or_else(|| TranslateError("FLWOR without for bindings".into()))?;
        if !pending.is_empty() {
            let mut pred = Pred::default();
            for c in pending {
                let BoolExpr::Cmp { lhs, op, rhs } = c else { unreachable!() };
                pred.conjuncts.push((
                    self.expr_operand(lhs, &bound)?,
                    *op,
                    self.expr_operand(rhs, &bound)?,
                ));
            }
            plan = Plan::unary(OpKind::Select { pred }, plan);
        }
        // Correlation conjuncts: compiled with the outer operand first.
        let mut corr = Vec::new();
        for c in corr_raw {
            let BoolExpr::Cmp { lhs, op, rhs } = c else { unreachable!() };
            let lhs_is_outer = lhs.free_vars().iter().any(|v| outer_cols.contains(v));
            let (o, i, op) = if lhs_is_outer { (lhs, rhs, *op) } else { (rhs, lhs, flip(*op)) };
            corr.push((self.expr_operand(o, outer_cols)?, op, self.expr_operand(i, &bound)?));
        }
        // Per-tuple return translation (with order-by injection).
        let ret = f.ret.as_ref().ok_or_else(|| TranslateError("FLWOR without return".into()))?;
        let (plan, ret_col) = self.translate_ret(ret, plan, &bound, &f.order_by)?;
        Ok((plan, ret_col, corr))
    }

    /// Translate a return expression per tuple of `plan`, yielding the
    /// content column. `order_by` is injected just before the outermost
    /// Tagger (Fig 2.2's τ placement), or before returning otherwise.
    fn translate_ret(
        &mut self,
        ret: &Expr,
        plan: Plan,
        avail: &[String],
        order_by: &[OrderSpec],
    ) -> TResult<(Plan, String)> {
        match ret {
            Expr::Elem(c) => self.translate_cons(c, plan, avail, order_by),
            other => {
                let (plan, slot) = self.translate_child(other, plan, avail)?;
                let col = match slot {
                    PatSlot::Col(c) => c,
                    PatSlot::Text(_) => {
                        return Err(TranslateError("bare literal return unsupported".into()))
                    }
                };
                let plan = self.inject_order_by(plan, avail, order_by)?;
                Ok((plan, col))
            }
        }
    }

    /// Translate a direct element constructor over `plan`'s tuples into a
    /// Tagger, decorrelating nested FLWOR children via LOJ + GroupBy.
    fn translate_cons(
        &mut self,
        cons: &ElemCons,
        plan: Plan,
        avail: &[String],
        order_by: &[OrderSpec],
    ) -> TResult<(Plan, String)> {
        let mut plan = plan;
        let mut content: Vec<PatSlot> = Vec::new();
        for child in &cons.children {
            let (p2, slot) = self.translate_child(child, plan, avail)?;
            plan = p2;
            content.push(slot);
        }
        let mut attrs: Vec<(String, PatSlot)> = Vec::new();
        for (k, v) in &cons.attrs {
            let slot = match v {
                AttrValue::Literal(s) => PatSlot::Text(s.clone()),
                AttrValue::Expr(e) => {
                    let (p2, slot) = self.translate_child(e, plan, avail)?;
                    plan = p2;
                    slot
                }
            };
            attrs.push((k.clone(), slot));
        }
        plan = self.inject_order_by(plan, avail, order_by)?;
        let out = self.fresh("col");
        let plan = Plan::unary(
            OpKind::Tagger {
                pattern: Pattern { name: cons.name.clone(), attrs, content },
                out: out.clone(),
            },
            plan,
        );
        Ok((plan, out))
    }

    /// Translate one constructor child (or attribute expression) to a
    /// pattern slot over the current plan.
    fn translate_child(
        &mut self,
        child: &Expr,
        plan: Plan,
        avail: &[String],
    ) -> TResult<(Plan, PatSlot)> {
        match child {
            Expr::Literal(s) | Expr::Number(s) => Ok((plan, PatSlot::Text(s.clone()))),
            Expr::Var(v) => {
                if avail.contains(v) {
                    Ok((plan, PatSlot::Col(v.clone())))
                } else {
                    Err(TranslateError(format!("unbound variable ${v} in constructor")))
                }
            }
            Expr::Path(p) => {
                let PathSource::Var(v) = &p.source else {
                    return Err(TranslateError("doc-rooted constructor paths unsupported".into()));
                };
                if !avail.contains(v) {
                    return Err(TranslateError(format!("unbound variable ${v} in constructor")));
                }
                let out = self.fresh("col");
                let plan = Plan::unary(
                    OpKind::NavCollection {
                        col: v.clone(),
                        steps: p.steps.clone(),
                        out: out.clone(),
                    },
                    plan,
                );
                Ok((plan, PatSlot::Col(out)))
            }
            Expr::Elem(inner) => {
                let (plan, col) = self.translate_cons(inner, plan, avail, &[])?;
                Ok((plan, PatSlot::Col(col)))
            }
            Expr::Agg { func, arg } => match &**arg {
                Expr::Flwor(f) => {
                    let (plan, col) = self.correlate(f, plan, avail, Some(*func))?;
                    Ok((plan, PatSlot::Col(col)))
                }
                // Aggregate over a doc-rooted path: an independent
                // single-tuple sub-query, merged in (Fig 2.3 pattern).
                Expr::Path(p) if matches!(p.source, PathSource::Doc(_)) => {
                    let (sub, col) =
                        self.translate_top(&Expr::Agg { func: *func, arg: arg.clone() })?;
                    let plan = Plan::binary(OpKind::Merge, plan, sub);
                    Ok((plan, PatSlot::Col(col)))
                }
                path_like => {
                    let (v, steps) = path_like
                        .as_var_path()
                        .ok_or_else(|| TranslateError("unsupported aggregate argument".into()))?;
                    let nav = self.fresh("col");
                    let plan = Plan::unary(
                        OpKind::NavCollection {
                            col: v.to_string(),
                            steps: steps.to_vec(),
                            out: nav.clone(),
                        },
                        plan,
                    );
                    let out = self.fresh("col");
                    let plan = Plan::unary(
                        OpKind::AggCol { col: nav, func: *func, out: out.clone() },
                        plan,
                    );
                    Ok((plan, PatSlot::Col(out)))
                }
            },
            Expr::Flwor(f) => {
                let free = Expr::Flwor(f.clone()).free_vars();
                if free.iter().any(|v| avail.contains(v)) {
                    let (plan, col) = self.correlate(f, plan, avail, None)?;
                    Ok((plan, PatSlot::Col(col)))
                } else {
                    // Independent sub-query: plan standalone (one tuple),
                    // then Merge — the Fig 2.3 pattern for unrelated blocks.
                    let (sub, col) = self.translate_top(&Expr::Flwor(f.clone()))?;
                    let plan = Plan::binary(OpKind::Merge, plan, sub);
                    Ok((plan, PatSlot::Col(col)))
                }
            }
            Expr::Seq(items) => {
                // Nested sequence: chain XML Unions in slot order.
                let mut plan = plan;
                let mut cols = Vec::new();
                for item in items {
                    let (p2, slot) = self.translate_child(item, plan, avail)?;
                    plan = p2;
                    match slot {
                        PatSlot::Col(c) => cols.push(c),
                        PatSlot::Text(_) => {
                            return Err(TranslateError(
                                "literal inside sequence unsupported".into(),
                            ))
                        }
                    }
                }
                let mut acc = cols
                    .first()
                    .cloned()
                    .ok_or_else(|| TranslateError("empty sequence in constructor".into()))?;
                for c in &cols[1..] {
                    let out = self.fresh("col");
                    plan = Plan::unary(
                        OpKind::XmlUnion { a: acc.clone(), b: c.clone(), out: out.clone() },
                        plan,
                    );
                    acc = out;
                }
                Ok((plan, PatSlot::Col(acc)))
            }
            Expr::DistinctValues(_) => Err(TranslateError(
                "distinct-values is only supported as a for-binding source".into(),
            )),
        }
    }

    /// Decorrelate a nested FLWOR: LOJ(outer, inner) on the correlation
    /// conjuncts, then value-based GroupBy over *all* outer columns with a
    /// Combine (or aggregate) of the inner return column — the rewritten Map
    /// operator of §2.4, yielding Fig 2.2's shape.
    fn correlate(
        &mut self,
        f: &Flwor,
        outer: Plan,
        avail: &[String],
        agg: Option<xquery_lang::AggFunc>,
    ) -> TResult<(Plan, String)> {
        let outer_cols = annotated_cols(&outer)?;
        let (inner, inner_ret, corr) = self.translate_flwor(f, &outer_cols)?;
        if corr.is_empty() {
            return Err(TranslateError(
                "nested FLWOR references outer variables but has no correlation predicate".into(),
            ));
        }
        let _ = avail;
        let pred = Pred { conjuncts: corr };
        let loj = Plan::binary(OpKind::LeftOuterJoin { pred }, outer, inner);
        let out_col = match agg {
            None => inner_ret.clone(),
            Some(_) => self.fresh("col"),
        };
        let func = match agg {
            None => GroupFunc::Combine { col: inner_ret },
            Some(func) => GroupFunc::Agg { func, col: inner_ret, out: out_col.clone() },
        };
        let grouped = Plan::unary(OpKind::GroupBy { cols: outer_cols, func }, loj);
        Ok((grouped, out_col))
    }

    fn inject_order_by(
        &mut self,
        plan: Plan,
        avail: &[String],
        order_by: &[OrderSpec],
    ) -> TResult<Plan> {
        if order_by.is_empty() {
            return Ok(plan);
        }
        let mut plan = plan;
        let mut keys = Vec::new();
        for spec in order_by {
            let col = match &spec.expr {
                Expr::Var(v) if avail.contains(v) => v.clone(),
                e => {
                    let (v, steps) = e.as_var_path().ok_or_else(|| {
                        TranslateError("order by key must be a variable or variable path".into())
                    })?;
                    let out = self.fresh("col");
                    plan = Plan::unary(
                        OpKind::NavCollection {
                            col: v.to_string(),
                            steps: steps.to_vec(),
                            out: out.clone(),
                        },
                        plan,
                    );
                    out
                }
            };
            keys.push((col, spec.descending));
        }
        let out = self.fresh("ord");
        Ok(Plan::unary(OpKind::OrderBy { keys, out }, plan))
    }

    fn expr_operand(&mut self, e: &Expr, avail: &[String]) -> TResult<Operand> {
        match e {
            Expr::Literal(s) | Expr::Number(s) => Ok(Operand::Const(Atomic::new(s.clone()))),
            Expr::Var(v) => {
                if avail.contains(v) {
                    Ok(Operand::Col(v.clone()))
                } else {
                    Err(TranslateError(format!("unbound variable ${v} in predicate")))
                }
            }
            Expr::Path(p) => match &p.source {
                PathSource::Var(v) if avail.contains(v) => {
                    Ok(Operand::Path { col: v.clone(), steps: p.steps.clone() })
                }
                _ => Err(TranslateError("predicate paths must start at a bound variable".into())),
            },
            other => Err(TranslateError(format!("unsupported predicate operand: {other:?}"))),
        }
    }

    /// Compile `c` as a join conjunct when one side reads only `left_cols`
    /// and the other only `right_cols`.
    fn spanning_conjunct(
        &mut self,
        c: &BoolExpr,
        left_cols: &[String],
        right_cols: &[String],
    ) -> TResult<Option<(Operand, CmpOp, Operand)>> {
        let BoolExpr::Cmp { lhs, op, rhs } = c else { unreachable!() };
        let lv = lhs.free_vars();
        let rv = rhs.free_vars();
        let within = |vars: &[String], cols: &[String]| {
            !vars.is_empty() && vars.iter().all(|v| cols.contains(v))
        };
        let spans = (within(&lv, left_cols) && within(&rv, right_cols))
            || (within(&lv, right_cols) && within(&rv, left_cols));
        if !spans {
            return Ok(None);
        }
        let all: Vec<String> = left_cols.iter().chain(right_cols).cloned().collect();
        Ok(Some((self.expr_operand(lhs, &all)?, *op, self.expr_operand(rhs, &all)?)))
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        eq => eq,
    }
}

/// Column names of a partially built plan, via a throwaway annotation pass.
fn annotated_cols(plan: &Plan) -> TResult<Vec<String>> {
    let mut probe = plan.clone();
    annotate(&mut probe).map_err(TranslateError)?;
    Ok(probe.schema.cols.iter().map(|c| c.name.clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use xmlstore::Store;

    const BIB: &str = r#"<bib>
        <book year="1994"><title>TCP/IP Illustrated</title>
            <author><last>Stevens</last><first>W.</first></author></book>
        <book year="2000"><title>Data on the Web</title>
            <author><last>Abiteboul</last><first>Serge</first></author></book>
    </bib>"#;

    const PRICES: &str = r#"<prices>
        <entry><price>39.95</price><b-title>Data on the Web</b-title></entry>
        <entry><price>65.95</price><b-title>TCP/IP Illustrated</b-title></entry>
        <entry><price>69.99</price><b-title>Advanced Programming in the Unix environment</b-title></entry>
    </prices>"#;

    fn store() -> Store {
        let mut s = Store::new();
        s.load_doc("bib.xml", BIB).unwrap();
        s.load_doc("prices.xml", PRICES).unwrap();
        s
    }

    fn run(s: &Store, q: &str) -> String {
        let (plan, col) = translate_query(q).unwrap();
        let mut ex = Executor::new(s);
        let t = ex.eval(&plan).unwrap();
        assert_eq!(t.n_rows(), 1, "top plan must yield one tuple");
        let items = t.rows[0].cells[t.col_idx(&col).unwrap()].items().to_vec();
        ex.materialize(&items).unwrap().to_xml()
    }

    #[test]
    fn simple_retag() {
        let s = store();
        let xml =
            run(&s, r#"<result>{ for $b in doc("bib.xml")/bib/book return $b/title }</result>"#);
        assert_eq!(
            xml,
            "<result><title>TCP/IP Illustrated</title><title>Data on the Web</title></result>"
        );
    }

    #[test]
    fn where_predicate_filters() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book where $b/@year = "1994" return $b/title }</r>"#,
        );
        assert_eq!(xml, "<r><title>TCP/IP Illustrated</title></r>");
    }

    #[test]
    fn path_predicate_via_normalization() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book[title = "Data on the Web"] return $b/@year }</r>"#,
        );
        assert_eq!(xml, "<r>2000</r>");
    }

    #[test]
    fn join_two_documents() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
                   where $b/title = $e/b-title
                   return <pair>{$b/title}{$e/price}</pair> }</r>"#,
        );
        assert_eq!(
            xml,
            concat!(
                "<r>",
                "<pair><title>TCP/IP Illustrated</title><price>65.95</price></pair>",
                "<pair><title>Data on the Web</title><price>39.95</price></pair>",
                "</r>"
            ),
        );
    }

    #[test]
    fn order_by_reorders_result() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book order by $b/title return $b/title }</r>"#,
        );
        assert_eq!(xml, "<r><title>Data on the Web</title><title>TCP/IP Illustrated</title></r>");
    }

    #[test]
    fn order_by_descending() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $e in doc("prices.xml")/prices/entry order by $e/price descending return $e/price }</r>"#,
        );
        assert_eq!(xml, "<r><price>69.99</price><price>65.95</price><price>39.95</price></r>");
    }

    #[test]
    fn distinct_values_binding() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $y in distinct-values(doc("bib.xml")/bib/book/@year) order by $y return <year v="{$y}"/> }</r>"#,
        );
        assert_eq!(xml, r#"<r><year v="1994"/><year v="2000"/></r>"#);
    }

    #[test]
    fn dependent_for_binding() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book, $a in $b/author return $a/last }</r>"#,
        );
        assert_eq!(xml, "<r><last>Stevens</last><last>Abiteboul</last></r>");
    }

    #[test]
    fn running_example_full_view() {
        // The Figure 1.2(a) view, end to end through parser + translator.
        let s = store();
        let xml = run(
            &s,
            r#"<result>{
              for $y in distinct-values(doc("bib.xml")/bib/book/@year)
              order by $y
              return
                <yGroup Y="{$y}">
                  <books>{
                    for $b in doc("bib.xml")/bib/book,
                        $e in doc("prices.xml")/prices/entry
                    where $y = $b/@year and $b/title = $e/b-title
                    return <entry>{$b/title}{$e/price}</entry>
                  }</books>
                </yGroup>
            }</result>"#,
        );
        assert_eq!(
            xml,
            concat!(
                r#"<result>"#,
                r#"<yGroup Y="1994"><books><entry><title>TCP/IP Illustrated</title><price>65.95</price></entry></books></yGroup>"#,
                r#"<yGroup Y="2000"><books><entry><title>Data on the Web</title><price>39.95</price></entry></books></yGroup>"#,
                r#"</result>"#
            ),
        );
    }

    #[test]
    fn correlated_group_with_no_matches_yields_empty_container() {
        // A year group whose books match no price entries still appears,
        // with an empty container (LOJ semantics).
        let mut s = Store::new();
        s.load_doc("bib.xml", r#"<bib><book year="1999"><title>Unpriced</title></book></bib>"#)
            .unwrap();
        s.load_doc("prices.xml", PRICES).unwrap();
        let xml = run(
            &s,
            r#"<result>{
              for $y in distinct-values(doc("bib.xml")/bib/book/@year)
              return <g Y="{$y}"><items>{
                  for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
                  where $y = $b/@year and $b/title = $e/b-title
                  return $e/price
              }</items></g>
            }</result>"#,
        );
        assert_eq!(xml, r#"<result><g Y="1999"><items/></g></result>"#);
    }

    #[test]
    fn independent_subqueries_merge() {
        // Two unrelated FLWORs under one constructor (the Fig 2.3 / Query 4
        // shape).
        let s = store();
        let xml = run(
            &s,
            r#"<r><titles>{ for $b in doc("bib.xml")/bib/book return $b/title }</titles>
                  <prices>{ for $e in doc("prices.xml")/prices/entry return $e/price }</prices></r>"#,
        );
        assert!(xml.starts_with("<r><titles><title>TCP/IP Illustrated</title>"));
        assert!(xml.contains(
            "<prices><price>39.95</price><price>65.95</price><price>69.99</price></prices>"
        ));
    }

    #[test]
    fn aggregate_count_in_constructor() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book return <t n="{count($b/author)}">{$b/title}</t> }</r>"#,
        );
        assert!(xml.contains(r#"<t n="1"><title>TCP/IP Illustrated</title></t>"#), "{xml}");
    }

    #[test]
    fn descendant_axis() {
        let s = store();
        let xml = run(&s, r#"<r>{ for $l in doc("bib.xml")//last return $l }</r>"#);
        assert_eq!(xml, "<r><last>Stevens</last><last>Abiteboul</last></r>");
    }

    #[test]
    fn literal_text_in_constructor() {
        let s = store();
        let xml = run(
            &s,
            r#"<r>{ for $b in doc("bib.xml")/bib/book where $b/@year = "1994" return <x>found</x> }</r>"#,
        );
        assert_eq!(xml, "<r><x>found</x></r>");
    }

    #[test]
    fn unsupported_constructs_error_cleanly() {
        assert!(translate_query("for $x in doc(\"a\")/r return $y").is_err());
        assert!(translate_query("<r>{ $unbound }</r>").is_err());
    }
}
