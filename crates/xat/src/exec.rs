//! The XAT executor: bottom-up evaluation of annotated plans over the
//! storage manager.
//!
//! Three of the dissertation's mechanisms are woven into execution:
//!
//! * **Order** (Ch. 3): operators never sort. Overriding-order keys are
//!   assigned only by Combine (Fig 3.3), XML Union (Fig 4.5) and Tagger;
//!   everything else just manipulates bags. The assignment cost is measured
//!   into [`ExecStats::overriding`] for the Figure 3.7–3.10 breakdowns.
//! * **Semantic identifiers** (Ch. 4): Tagger and GroupBy generate
//!   reproducible ids from the Context Schema (Table 4.2, Figs 4.3–4.5),
//!   timed into [`ExecStats::semid`] for Figures 4.9/4.10.
//! * **Counts** (Ch. 6): tuple counts follow Table 6.1 — sources emit 1,
//!   joins multiply, Distinct and GroupBy sum — and delta sources emit the
//!   update sign, which is Table 6.2's maintenance-time rule.
//!
//! Incremental maintenance plans execute on this same engine: a
//! [`crate::plan::OpKind::DeltaSource`] leaf emits the document root flagged
//! as *delta*, and navigation from delta-flagged items is restricted to the
//! registered update fragments — the algebraic equivalent of processing a
//! batch update tree (Ch. 5/7). Restriction is per-item (not per-document),
//! so self-join views (§7.5) behave correctly: the ΔS side is restricted
//! while the S side scans freely.

use crate::plan::{GroupFunc, OpKind, Operand, PatSlot, Pattern, Plan, Pred};
use crate::table::{ColInfo, Row, XatTable};
use crate::value::{Atomic, Cell, ConsId, Item, ItemRef, NavMode};
use flexkey::{FlexKey, LngAtom, OrdAtom, OrdKey, SemId};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use xmlstore::{NodeData, Store};
use xquery_lang::{AggFunc, Axis, CmpOp, NodeTest, Step};

/// Execution options: the switches that enable the view-maintenance
/// machinery (Figure 9.1 measures their cost by comparing on vs. off).
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Generate semantic identifiers from Context Schemas (Ch. 4). When off,
    /// constructed nodes get cheap synthetic ids (plain execution).
    pub semantic_ids: bool,
    /// Propagate count annotations (Ch. 6). When off, all counts are 1.
    pub counts: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { semantic_ids: true, counts: true }
    }
}

impl ExecOptions {
    /// Plain query execution without maintenance support.
    pub fn plain() -> ExecOptions {
        ExecOptions { semantic_ids: false, counts: false }
    }
}

/// Cost instrumentation matching the paper's breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total wall-clock execution time.
    pub total: Duration,
    /// Order Schema computation (plan annotation; Figures 3.7–3.10 call this
    /// "Order Schema").
    pub order_schema: Duration,
    /// Overriding-order key assignment (Combine / XML Union / Tagger).
    pub overriding: Duration,
    /// Semantic identifier generation (Figures 4.9/4.10).
    pub semid: Duration,
    /// Final (partial) sorting when materializing the result.
    pub final_sort: Duration,
}

impl ExecStats {
    pub fn order_total(&self) -> Duration {
        self.order_schema + self.overriding + self.final_sort
    }

    /// Accumulate another run's statistics field by field.
    pub fn merge(&mut self, o: &ExecStats) {
        self.total += o.total;
        self.order_schema += o.order_schema;
        self.overriding += o.overriding;
        self.semid += o.semid;
        self.final_sort += o.final_sort;
    }
}

/// A constructed node skeleton (§3.3.1 "Constructed Nodes": only structure
/// and references are stored, never copies of the referenced data).
#[derive(Clone, Debug)]
pub struct ConsNode {
    pub sem: SemId,
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Item>,
    pub count: i64,
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

type EResult<T> = Result<T, ExecError>;

/// The executor. Borrow a store, configure options, run plans.
pub struct Executor<'s> {
    pub store: &'s Store,
    pub opts: ExecOptions,
    pub stats: ExecStats,
    /// Constructed-node arena.
    pub cons: Vec<ConsNode>,
    /// Delta restriction: doc name → update-fragment root keys. Items
    /// flagged `delta` navigate only through these fragments.
    delta: HashMap<String, Vec<FlexKey>>,
    /// Sign emitted by DeltaSource rows (+1 inserts, −1 deletes).
    delta_sign: i64,
    synth: u32,
}

impl<'s> Executor<'s> {
    pub fn new(store: &'s Store) -> Executor<'s> {
        Executor {
            store,
            opts: ExecOptions::default(),
            stats: ExecStats::default(),
            cons: Vec::new(),
            delta: HashMap::new(),
            delta_sign: 1,
            synth: 0,
        }
    }

    pub fn with_options(store: &'s Store, opts: ExecOptions) -> Executor<'s> {
        Executor { opts, ..Executor::new(store) }
    }

    /// Register the update fragments of `doc` for an incremental maintenance
    /// plan, and the sign its DeltaSource rows carry.
    pub fn set_delta(&mut self, doc: &str, frags: Vec<FlexKey>, sign: i64) {
        self.delta.insert(doc.to_string(), frags);
        self.delta_sign = sign;
    }

    pub fn cons_node(&self, id: ConsId) -> &ConsNode {
        &self.cons[id.0 as usize]
    }

    /// Evaluate an annotated plan, returning its output table.
    ///
    /// Each evaluation also mirrors its [`ExecStats`] slice into the
    /// global `span/xat/*` histograms, so engine-stage costs (overriding
    /// order, semantic ids, final sort — the paper's Figure 3.7–4.10
    /// breakdowns) show up in any metrics snapshot.
    pub fn eval(&mut self, plan: &Plan) -> EResult<XatTable> {
        let before = self.stats;
        let t0 = Instant::now();
        let out = self.eval_inner(plan);
        let total = t0.elapsed();
        self.stats.total += total;
        obs::record_span("xat/total", total);
        obs::record_span("xat/overriding", self.stats.overriding.saturating_sub(before.overriding));
        obs::record_span("xat/semid", self.stats.semid.saturating_sub(before.semid));
        obs::record_span("xat/final_sort", self.stats.final_sort.saturating_sub(before.final_sort));
        out
    }

    fn eval_inner(&mut self, plan: &Plan) -> EResult<XatTable> {
        // Join-family operators control their own child evaluation order so
        // the delta side can semi-join-restrict the other side first.
        if matches!(plan.op, OpKind::Join { .. } | OpKind::LeftOuterJoin { .. }) {
            return self.eval_join_like(plan);
        }
        let mut inputs = Vec::with_capacity(plan.children.len());
        for c in &plan.children {
            inputs.push(self.eval_inner(c)?);
        }
        let mut out = XatTable::new(plan.schema.cols.clone());
        out.order_schema = plan.schema.order.clone();
        match &plan.op {
            OpKind::Unit => {
                out.rows.push(Row::new(Vec::new()));
            }
            OpKind::Source { doc, out: _ } => {
                let root = self
                    .store
                    .doc_handle(doc)
                    .ok_or_else(|| ExecError(format!("unknown document {doc}")))?;
                out.rows.push(Row::new(vec![Cell::one(Item::base(root))]));
            }
            OpKind::DeltaSource { doc, out: _ } => {
                // One tuple per batch, carrying the update sign; navigation
                // from it is restricted to the registered fragments.
                if self.delta.get(doc).is_some_and(|f| !f.is_empty()) {
                    let root = self
                        .store
                        .doc_handle(doc)
                        .ok_or_else(|| ExecError(format!("unknown document {doc}")))?;
                    let mut item = Item::base(root);
                    item.delta = NavMode::DeltaOnly;
                    let count = if self.opts.counts { self.delta_sign } else { 1 };
                    out.rows.push(Row::with_count(vec![Cell::one(item)], count));
                }
            }
            OpKind::ExcludeSource { doc, out: _ } => {
                // The document state on the other side of the update:
                // navigation from this item skips the update fragments.
                let root = self
                    .store
                    .doc_handle(doc)
                    .ok_or_else(|| ExecError(format!("unknown document {doc}")))?;
                let mut item = Item::base(root);
                item.delta = NavMode::Exclude;
                out.rows.push(Row::new(vec![Cell::one(item)]));
            }
            OpKind::NavUnnest { col, steps, out: _ } => {
                let t = &inputs[0];
                let ci = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                for row in &t.rows {
                    for entry in row.cells[ci].items() {
                        for hit in self.eval_path(entry, steps) {
                            // §6.5-style classification of bound delta rows:
                            // a binding *inside* an update fragment exists on
                            // one side of the update only and keeps the batch
                            // sign; a binding that is an *ancestor* of a
                            // fragment exists in BOTH states, so its delta is
                            // the pair (post-derivation, +1) ⊎
                            // (pre-derivation, −1) — downstream navigation of
                            // each copy evaluates over the matching state,
                            // and deep-union fusion nets the content change
                            // (exposed copies, attributes, aggregates).
                            if hit.delta == NavMode::DeltaOnly {
                                if let Some(k) = hit.as_base() {
                                    let inside = self.restriction_for(k).is_some_and(|frags| {
                                        frags.iter().any(|f| f.is_self_or_ancestor_of(k))
                                    });
                                    if !inside {
                                        let store_is_post = self.delta_sign > 0;
                                        let (post_mode, pre_mode) = if store_is_post {
                                            (NavMode::Free, NavMode::Exclude)
                                        } else {
                                            (NavMode::Exclude, NavMode::Free)
                                        };
                                        let mag = row.count.abs().max(1);
                                        let mut post_hit = hit.clone();
                                        post_hit.delta = post_mode;
                                        let mut cells = row.cells.clone();
                                        cells.push(Cell::one(post_hit));
                                        out.rows.push(Row::with_count(cells, mag));
                                        let mut pre_hit = hit;
                                        pre_hit.delta = pre_mode;
                                        let mut cells = row.cells.clone();
                                        cells.push(Cell::one(pre_hit));
                                        out.rows.push(Row::with_count(cells, -mag));
                                        continue;
                                    }
                                }
                            }
                            let mut cells = row.cells.clone();
                            cells.push(Cell::one(hit));
                            out.rows.push(Row::with_count(cells, row.count));
                        }
                    }
                }
            }
            OpKind::NavCollection { col, steps, out: _ } => {
                let t = &inputs[0];
                let ci = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                for row in &t.rows {
                    let mut hits = Vec::new();
                    for entry in row.cells[ci].items() {
                        hits.extend(self.eval_path(entry, steps));
                    }
                    let mut cells = row.cells.clone();
                    cells.push(Cell::seq(hits));
                    out.rows.push(Row::with_count(cells, row.count));
                }
            }
            OpKind::Select { pred } => {
                let t = &inputs[0];
                for row in &t.rows {
                    if self.eval_pred(t, row, pred)? {
                        out.rows.push(row.clone());
                    }
                }
            }
            OpKind::Join { .. } | OpKind::LeftOuterJoin { .. } => {
                unreachable!("handled by eval_join_like")
            }
            OpKind::InSet { operand, values } => {
                let t = &inputs[0];
                let set: std::collections::HashSet<String> = values.iter().map(atom_key).collect();
                for row in &t.rows {
                    let vals = self.operand_values(t, row, operand)?;
                    if vals.iter().any(|v| set.contains(&atom_key(v))) {
                        out.rows.push(row.clone());
                    }
                }
            }
            OpKind::Cartesian => {
                let (l, r) = (&inputs[0], &inputs[1]);
                for lr in &l.rows {
                    for rr in &r.rows {
                        let mut cells = lr.cells.clone();
                        cells.extend(rr.cells.iter().cloned());
                        out.rows.push(Row::with_count(cells, lr.count * rr.count));
                    }
                }
            }
            OpKind::Distinct { col } => {
                // Implements `distinct-values`: the column is atomized, and
                // the count of a distinct value is the sum of the counts of
                // the tuples carrying it (the counting solution's rule for
                // duplicate elimination, Ch. 6).
                let t = &inputs[0];
                let ci = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                let mut seen: HashMap<String, usize> = HashMap::new();
                for row in &t.rows {
                    let val: String = row.cells[ci]
                        .items()
                        .iter()
                        .map(|it| item_atomic(it, self.store).0)
                        .collect::<Vec<_>>()
                        .join(" ");
                    match seen.get(&val) {
                        Some(&i) => out.rows[i].count += row.count,
                        None => {
                            seen.insert(val.clone(), out.rows.len());
                            // Project to the distinct value alone (see the
                            // annotation rule: re-rooted columns are dead).
                            out.rows
                                .push(Row::with_count(vec![Cell::one(Item::val(val))], row.count));
                        }
                    }
                }
                if !self.opts.counts {
                    for r in &mut out.rows {
                        r.count = 1;
                    }
                }
            }
            OpKind::GroupBy { cols, func } => {
                self.group_by(&inputs[0], cols, func, &mut out)?;
            }
            OpKind::OrderBy { keys, out: _ } => {
                let t = &inputs[0];
                let kis: Vec<(usize, bool)> = keys
                    .iter()
                    .map(|(k, d)| {
                        t.col_idx(k)
                            .map(|i| (i, *d))
                            .ok_or_else(|| ExecError(format!("no column ${k}")))
                    })
                    .collect::<EResult<_>>()?;
                for row in &t.rows {
                    let mut ord = OrdKey::empty();
                    for &(i, desc) in &kis {
                        for item in row.cells[i].items() {
                            let atom = item_ord_value(item, self.store);
                            ord.push(if desc { atom.descending() } else { atom });
                        }
                    }
                    let mut cells = row.cells.clone();
                    cells.push(Cell::one(Item {
                        r: ItemRef::Val(Atomic::new("")),
                        ord: Some(ord),
                        count: 1,
                        abs: false,
                        delta: NavMode::Free,
                    }));
                    out.rows.push(Row::with_count(cells, row.count));
                }
            }
            OpKind::Combine { col } => {
                let t = &inputs[0];
                let ci = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                let items = self.combine_items(t, ci)?;
                out.rows.push(Row::new(vec![Cell::seq(items)]));
            }
            OpKind::Tagger { pattern, out: _ } => {
                self.tagger(&inputs[0], pattern, plan, &mut out)?;
            }
            OpKind::XmlUnion { a, b, out: _ } => {
                let t = &inputs[0];
                let (ai, bi) = match (t.col_idx(a), t.col_idx(b)) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Err(ExecError(format!("no column ${a}/${b}"))),
                };
                let t0 = Instant::now();
                for row in &t.rows {
                    let mut items = Vec::new();
                    for (branch, idx) in [(0usize, ai), (1, bi)] {
                        for it in row.cells[idx].items() {
                            let mut it = it.clone();
                            it.prefix_ord(OrdAtom::Key(FlexKey::root(flexkey::Seg::nth(branch))));
                            items.push(it);
                        }
                    }
                    let mut cells = row.cells.clone();
                    cells.push(Cell::seq(items));
                    out.rows.push(Row::with_count(cells, row.count));
                }
                self.stats.overriding += t0.elapsed();
            }
            OpKind::XmlUnique { col, out: _ } => {
                let t = &inputs[0];
                let ci = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                for row in &t.rows {
                    let mut seen: Vec<ItemRef> = Vec::new();
                    let mut items = Vec::new();
                    for it in row.cells[ci].items() {
                        if !seen.contains(&it.r) {
                            seen.push(it.r.clone());
                            let mut it = it.clone();
                            it.ord = None; // restore document order (§3.3.2)
                            items.push(it);
                        }
                    }
                    let mut cells = row.cells.clone();
                    cells.push(Cell::seq(items));
                    out.rows.push(Row::with_count(cells, row.count));
                }
            }
            OpKind::AggCol { col, func, out: _ } => {
                let t = &inputs[0];
                let ci = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                for row in &t.rows {
                    let vals: Vec<(Atomic, i64)> = row.cells[ci]
                        .items()
                        .iter()
                        .map(|it| (item_atomic(it, self.store), it.count.max(1)))
                        .collect();
                    let v = eval_agg(*func, &vals);
                    let mut cells = row.cells.clone();
                    cells.push(Cell::one(Item {
                        r: ItemRef::Val(v),
                        ord: None,
                        count: 1,
                        abs: false,
                        delta: NavMode::Free,
                    }));
                    out.rows.push(Row::with_count(cells, row.count));
                }
            }
            OpKind::Merge => {
                let (l, r) = (&inputs[0], &inputs[1]);
                match (l.n_rows(), r.n_rows()) {
                    (_, 1) => {
                        for lr in &l.rows {
                            let mut cells = lr.cells.clone();
                            cells.extend(r.rows[0].cells.iter().cloned());
                            out.rows.push(Row::with_count(cells, lr.count * r.rows[0].count));
                        }
                    }
                    (1, _) => {
                        for rr in &r.rows {
                            let mut cells = l.rows[0].cells.clone();
                            cells.extend(rr.cells.iter().cloned());
                            out.rows.push(Row::with_count(cells, l.rows[0].count * rr.count));
                        }
                    }
                    (a, b) if a == b => {
                        for (lr, rr) in l.rows.iter().zip(&r.rows) {
                            let mut cells = lr.cells.clone();
                            cells.extend(rr.cells.iter().cloned());
                            out.rows.push(Row::with_count(cells, lr.count * rr.count));
                        }
                    }
                    (a, b) => return Err(ExecError(format!("Merge of {a}x{b} tables"))),
                }
            }
        }
        Ok(out)
    }

    // ---- navigation ---------------------------------------------------

    /// Evaluate location steps from one item. Delta-flagged items navigate
    /// only along paths into the registered update fragments; result items
    /// inherit the flag (the update-tree prefix-sharing semantics of Ch. 5).
    pub fn eval_path(&self, entry: &Item, steps: &[Step]) -> Vec<Item> {
        let mut frontier = vec![entry.clone()];
        for step in steps {
            let mut next = Vec::new();
            for item in &frontier {
                self.eval_step(item, step, &mut next);
            }
            frontier = next;
        }
        frontier
    }

    /// The update fragments to exclude when deep-copying the subtree at
    /// `key` under navigation mode `mode` (pre-state copies skip them).
    pub(crate) fn excluded_under(
        &self,
        key: &FlexKey,
        mode: crate::value::NavMode,
    ) -> Vec<FlexKey> {
        match mode {
            crate::value::NavMode::Exclude => {
                self.restriction_for(key).map(|f| f.to_vec()).unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    fn restriction_for(&self, key: &FlexKey) -> Option<&[FlexKey]> {
        for (doc, frags) in &self.delta {
            if let Some(handle) = self.store.doc_handle(doc) {
                if handle.is_self_or_ancestor_of(key) {
                    return Some(frags);
                }
            }
        }
        None
    }

    fn eval_step(&self, item: &Item, step: &Step, out: &mut Vec<Item>) {
        match &item.r {
            ItemRef::Val(v) => {
                // text() over an already-atomic value is the identity.
                if matches!(step.test, NodeTest::Text) {
                    out.push(Item {
                        r: ItemRef::Val(v.clone()),
                        ord: None,
                        count: item.count,
                        abs: false,
                        delta: item.delta,
                    });
                }
            }
            // Constructed nodes are not re-navigated by the supported view
            // class (views navigate sources, not prior results).
            ItemRef::Cons(_) => {}
            ItemRef::Base(k) => {
                let restrict = match item.delta {
                    NavMode::Free => None,
                    NavMode::DeltaOnly | NavMode::Exclude => {
                        self.restriction_for(k).map(|f| (item.delta, f))
                    }
                };
                match (&step.axis, &step.test) {
                    (_, NodeTest::Attr(a)) => {
                        if let Some(v) = self.store.attr(k, a) {
                            out.push(Item {
                                r: ItemRef::Val(Atomic(v)),
                                ord: None,
                                count: item.count,
                                abs: false,
                                delta: item.delta,
                            });
                        }
                    }
                    (_, NodeTest::Text) => {
                        // Text nodes are real nodes with FlexKeys (§2.2.1
                        // "atomic values are treated as text nodes"), so a
                        // text() step yields keyed items — identity and
                        // document order preserved.
                        for (ck, n) in self.store.children(k) {
                            if matches!(n.data, NodeData::Text { .. }) {
                                out.push(Item {
                                    r: ItemRef::Base(ck),
                                    ord: None,
                                    count: item.count,
                                    abs: false,
                                    delta: item.delta,
                                });
                            }
                        }
                    }
                    (Axis::Child, test) => {
                        for ck in self.child_candidates(k, restrict) {
                            if self.name_matches(&ck, test) {
                                out.push(Item {
                                    r: ItemRef::Base(ck),
                                    ord: None,
                                    count: item.count,
                                    abs: false,
                                    delta: item.delta,
                                });
                            }
                        }
                    }
                    (Axis::Descendant, test) => {
                        for dk in self.descendant_candidates(k, restrict) {
                            if self.name_matches(&dk, test) {
                                out.push(Item {
                                    r: ItemRef::Base(dk),
                                    ord: None,
                                    count: item.count,
                                    abs: false,
                                    delta: item.delta,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    fn name_matches(&self, key: &FlexKey, test: &NodeTest) -> bool {
        match self.store.node(key).map(|n| &n.data) {
            Some(NodeData::Element { name, .. }) => match test {
                NodeTest::Name(n) => name == n,
                NodeTest::Wildcard => true,
                _ => false,
            },
            _ => false,
        }
    }

    /// Children of `k` under a navigation mode. In `DeltaOnly` mode the
    /// executor never scans unrelated siblings: for each fragment below `k`,
    /// the unique child of `k` on the path to the fragment is computed from
    /// the keys alone, so maintenance cost scales with the update, not the
    /// document (§9.2's flat curves). In `Exclude` mode, fragment subtrees
    /// are filtered out (the document state on the other side of the update).
    fn child_candidates(
        &self,
        k: &FlexKey,
        restrict: Option<(NavMode, &[FlexKey])>,
    ) -> Vec<FlexKey> {
        match restrict {
            None | Some((NavMode::Free, _)) => {
                self.store.children(k).into_iter().map(|(c, _)| c).collect()
            }
            Some((NavMode::DeltaOnly, frags)) => {
                // Inside a fragment: scan freely (fragments are update-sized).
                if frags.iter().any(|f| f.is_self_or_ancestor_of(k)) {
                    return self.store.children(k).into_iter().map(|(c, _)| c).collect();
                }
                let mut set = std::collections::BTreeSet::new();
                for f in frags {
                    if k.is_ancestor_of(f) {
                        let child = FlexKey::from_segs(f.segs()[..k.depth() + 1].to_vec());
                        if self.store.node(&child).is_some() {
                            set.insert(child);
                        }
                    }
                }
                set.into_iter().collect()
            }
            Some((NavMode::Exclude, frags)) => self
                .store
                .children(k)
                .into_iter()
                .map(|(c, _)| c)
                .filter(|c| !frags.iter().any(|f| f.is_self_or_ancestor_of(c)))
                .collect(),
        }
    }

    fn descendant_candidates(
        &self,
        k: &FlexKey,
        restrict: Option<(NavMode, &[FlexKey])>,
    ) -> Vec<FlexKey> {
        match restrict {
            None | Some((NavMode::Free, _)) => {
                self.store.descendants(k).into_iter().map(|(c, _)| c).collect()
            }
            Some((NavMode::DeltaOnly, frags)) => {
                if frags.iter().any(|f| f.is_self_or_ancestor_of(k)) {
                    return self.store.descendants(k).into_iter().map(|(c, _)| c).collect();
                }
                let mut set = std::collections::BTreeSet::new();
                for f in frags {
                    if k.is_ancestor_of(f) {
                        // Nodes on the path strictly between k and f…
                        for d in k.depth() + 1..f.depth() {
                            let mid = FlexKey::from_segs(f.segs()[..d].to_vec());
                            if self.store.node(&mid).is_some() {
                                set.insert(mid);
                            }
                        }
                        // …the fragment root, and everything inside it.
                        if self.store.node(f).is_some() {
                            set.insert(f.clone());
                        }
                        for (d, _) in self.store.descendants(f) {
                            set.insert(d);
                        }
                    }
                }
                set.into_iter().collect()
            }
            Some((NavMode::Exclude, frags)) => self
                .store
                .descendants(k)
                .into_iter()
                .map(|(c, _)| c)
                .filter(|c| !frags.iter().any(|f| f.is_self_or_ancestor_of(c)))
                .collect(),
        }
    }

    // ---- predicates -----------------------------------------------------

    fn operand_values(&self, t: &XatTable, row: &Row, op: &Operand) -> EResult<Vec<Atomic>> {
        Ok(match op {
            Operand::Const(c) => vec![c.clone()],
            Operand::Col(c) => {
                let i = t.col_idx(c).ok_or_else(|| ExecError(format!("no column ${c}")))?;
                row.cells[i].items().iter().map(|it| item_atomic(it, self.store)).collect()
            }
            Operand::Path { col, steps } => {
                let i = t.col_idx(col).ok_or_else(|| ExecError(format!("no column ${col}")))?;
                let mut vals = Vec::new();
                for entry in row.cells[i].items() {
                    for hit in self.eval_path(entry, steps) {
                        vals.push(item_atomic(&hit, self.store));
                    }
                }
                vals
            }
        })
    }

    fn eval_pred(&self, t: &XatTable, row: &Row, pred: &Pred) -> EResult<bool> {
        for (l, op, r) in &pred.conjuncts {
            let lv = self.operand_values(t, row, l)?;
            let rv = self.operand_values(t, row, r)?;
            if !exists_cmp(&lv, *op, &rv) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ---- join -----------------------------------------------------------

    fn join(
        &mut self,
        l: &XatTable,
        r: &XatTable,
        pred: &Pred,
        outer: bool,
        out: &mut XatTable,
    ) -> EResult<()> {
        // Pick an equality conjunct with one side per input for hashing;
        // remaining conjuncts verify. The physical output order is arbitrary
        // — order is recovered from the Order Schema (§3.4.3, Fig 3.4).
        let is_left = |o: &Operand| o.col().is_some_and(|c| l.col_idx(c).is_some());
        let is_right = |o: &Operand| o.col().is_some_and(|c| r.col_idx(c).is_some());
        let hash_idx = pred.conjuncts.iter().position(|(a, op, b)| {
            *op == CmpOp::Eq && ((is_left(a) && is_right(b)) || (is_right(a) && is_left(b)))
        });
        match hash_idx {
            Some(hi) => {
                let (a, _, b) = &pred.conjuncts[hi];
                let (lop, rop) = if is_left(a) { (a, b) } else { (b, a) };
                let rest: Vec<_> = pred
                    .conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != hi)
                    .map(|(_, c)| c.clone())
                    .collect();
                // Build hash on the right input.
                let mut index: HashMap<String, Vec<usize>> = HashMap::new();
                for (ri, rr) in r.rows.iter().enumerate() {
                    for v in self.operand_values(r, rr, rop)? {
                        index.entry(atom_key(&v)).or_default().push(ri);
                    }
                }
                for lr in &l.rows {
                    let mut matched = false;
                    let mut joined: Vec<usize> = Vec::new();
                    for v in self.operand_values(l, lr, lop)? {
                        if let Some(ris) = index.get(&atom_key(&v)) {
                            for &ri in ris {
                                if !joined.contains(&ri) {
                                    joined.push(ri);
                                }
                            }
                        }
                    }
                    for ri in joined {
                        let rr = &r.rows[ri];
                        if self.verify_rest(l, r, lr, rr, &rest)? {
                            matched = true;
                            let mut cells = lr.cells.clone();
                            cells.extend(rr.cells.iter().cloned());
                            out.rows.push(Row::with_count(cells, lr.count * rr.count));
                        }
                    }
                    if outer && !matched {
                        let mut cells = lr.cells.clone();
                        cells.extend(std::iter::repeat_n(Cell::Null, r.cols.len()));
                        out.rows.push(Row::with_count(cells, lr.count));
                    }
                }
            }
            None => {
                // Nested-loop fallback.
                for lr in &l.rows {
                    let mut matched = false;
                    for rr in &r.rows {
                        if self.verify_rest(l, r, lr, rr, &pred.conjuncts)? {
                            matched = true;
                            let mut cells = lr.cells.clone();
                            cells.extend(rr.cells.iter().cloned());
                            out.rows.push(Row::with_count(cells, lr.count * rr.count));
                        }
                    }
                    if outer && !matched {
                        let mut cells = lr.cells.clone();
                        cells.extend(std::iter::repeat_n(Cell::Null, r.cols.len()));
                        out.rows.push(Row::with_count(cells, lr.count));
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate a Join / Left Outer Join with delta-aware child ordering
    /// and semi-join pushdown: the delta side (if any) is evaluated first,
    /// its join-key values restrict the other side via [`OpKind::InSet`]
    /// filters, and an empty delta short-circuits the other side entirely —
    /// keeping IMP cost proportional to the update, not the document
    /// (the paper's batch-update-tree efficiency argument, Ch. 5/9).
    fn eval_join_like(&mut self, plan: &Plan) -> EResult<XatTable> {
        let (pred, outer) = match &plan.op {
            OpKind::Join { pred } => (pred, false),
            OpKind::LeftOuterJoin { pred } => (pred, true),
            _ => unreachable!(),
        };
        let mut out = XatTable::new(plan.schema.cols.clone());
        out.order_schema = plan.schema.order.clone();
        let ldelta = plan.children[0].has_delta_source();
        let rdelta = plan.children[1].has_delta_source();
        match (ldelta, rdelta) {
            (false, false) => {
                let l = self.eval_inner(&plan.children[0])?;
                let r = self.eval_inner(&plan.children[1])?;
                self.join(&l, &r, pred, outer, &mut out)?;
            }
            (true, false) => {
                // Linear in the (delta) left input; restrict the right side
                // to join partners of the delta rows.
                let l = self.eval_inner(&plan.children[0])?;
                if l.n_rows() == 0 {
                    return Ok(out);
                }
                let rplan = self.semifiltered(&plan.children[1], &l, pred)?;
                let r = self.eval_inner(&rplan)?;
                self.join(&l, &r, pred, outer, &mut out)?;
            }
            (false, true) => {
                let r = self.eval_inner(&plan.children[1])?;
                if r.n_rows() == 0 {
                    return Ok(out);
                }
                let lplan = self.semifiltered(&plan.children[0], &r, pred)?;
                let l = self.eval_inner(&lplan)?;
                if outer {
                    self.loj_delta(&l, &r, &plan.children[1], pred, &mut out)?;
                } else {
                    self.join(&l, &r, pred, false, &mut out)?;
                }
            }
            (true, true) => {
                return Err(ExecError(
                    "both join inputs contain delta sources; IMP terms place Δ at one occurrence"
                        .into(),
                ));
            }
        }
        Ok(out)
    }

    /// Push semi-join filters into `other_plan` for every equality conjunct
    /// whose one side reads columns of the (already evaluated) `delta`
    /// table.
    fn semifiltered(&self, other_plan: &Plan, delta: &XatTable, pred: &Pred) -> EResult<Plan> {
        let mut plan = other_plan.clone();
        for (a, op, b) in &pred.conjuncts {
            if *op != CmpOp::Eq {
                continue;
            }
            let (d_op, o_op) = if a.col().is_some_and(|c| delta.col_idx(c).is_some()) {
                (a, b)
            } else if b.col().is_some_and(|c| delta.col_idx(c).is_some()) {
                (b, a)
            } else {
                continue;
            };
            let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
            let mut values: Vec<Atomic> = Vec::new();
            for row in &delta.rows {
                for v in self.operand_values(delta, row, d_op)? {
                    if seen.insert(atom_key(&v)) {
                        values.push(v);
                    }
                }
            }
            plan = plan.with_semifilter(o_op, &values);
        }
        Ok(plan)
    }

    /// The Left Outer Join delta rule (§7.4) for a delta flowing through the
    /// right input. `delta_b` is the evaluated right input (ΔB rows, signed
    /// counts); `right_plan` re-evaluates B's pre-/post-state by replacing
    /// its DeltaSource leaves. The stored state is post-update exactly when
    /// the registered delta sign is positive (inserts are applied to the
    /// store before propagation; deletes after, Ch. 7 protocol).
    fn loj_delta(
        &mut self,
        l: &XatTable,
        delta_b: &XatTable,
        right_plan: &Plan,
        pred: &Pred,
        out: &mut XatTable,
    ) -> EResult<()> {
        // 1. Joined delta rows: A ⋈ ΔB.
        self.join(l, delta_b, pred, false, out)?;
        // 2. Null-row transition corrections. Only left rows that match ΔB
        // can transition (a first/last match necessarily involves a Δ row),
        // and `l` has already been semi-join-restricted to those; the state
        // evaluation is restricted the same way. Only the *stored* state is
        // evaluated: the other state is derived by subtracting the ΔB rows
        // via ECC tuple matching (Theorem 4.3.1 — the Evaluation Context
        // Columns identify tuples across computations), saving one full
        // evaluation of the right subtree per IMP term.
        let store_is_post = self.delta_sign > 0;
        let b_stored_plan =
            self.semifiltered(&right_plan.delta_replaced(false), l, &swap_pred(pred))?;
        let b_stored = self.eval_inner(&b_stored_plan)?;
        let b_other = ecc_subtract(&b_stored, delta_b);
        let (b_pre, b_post) = if store_is_post { (b_other, b_stored) } else { (b_stored, b_other) };
        for lr in &l.rows {
            let pre = self.has_match(l, lr, &b_pre, pred)?;
            let post = self.has_match(l, lr, &b_post, pred)?;
            let sign = match (pre, post) {
                (true, false) => 1,  // lost its last match: null row appears
                (false, true) => -1, // gained a first match: null row disappears
                _ => continue,
            };
            let mut cells = lr.cells.clone();
            cells.extend(std::iter::repeat_n(Cell::Null, delta_b.cols.len()));
            out.rows.push(Row::with_count(cells, sign * lr.count.abs()));
        }
        Ok(())
    }

    fn has_match(&self, l: &XatTable, lr: &Row, b: &XatTable, pred: &Pred) -> EResult<bool> {
        for rr in &b.rows {
            if rr.count <= 0 {
                continue;
            }
            if self.verify_rest(l, b, lr, rr, &pred.conjuncts)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn verify_rest(
        &self,
        l: &XatTable,
        r: &XatTable,
        lr: &Row,
        rr: &Row,
        conjuncts: &[(Operand, CmpOp, Operand)],
    ) -> EResult<bool> {
        for (a, op, b) in conjuncts {
            let av = self.side_values(l, r, lr, rr, a)?;
            let bv = self.side_values(l, r, lr, rr, b)?;
            if !exists_cmp(&av, *op, &bv) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn side_values(
        &self,
        l: &XatTable,
        r: &XatTable,
        lr: &Row,
        rr: &Row,
        op: &Operand,
    ) -> EResult<Vec<Atomic>> {
        match op.col() {
            Some(c) if l.col_idx(c).is_some() => self.operand_values(l, lr, op),
            Some(_) => self.operand_values(r, rr, op),
            None => self.operand_values(l, lr, op),
        }
    }

    // ---- combine / group by / tagger -------------------------------------

    /// Collect all items of column `ci` across tuples, assigning overriding
    /// orders per the `combine` function of Fig 3.3 / Fig 4.3.
    fn combine_items(&mut self, t: &XatTable, ci: usize) -> EResult<Vec<Item>> {
        let t0 = Instant::now();
        let os: Vec<usize> = t.order_schema.clone();
        let col_in_os = os.iter().position(|&i| i == ci);
        let mut items = Vec::new();
        for row in &t.rows {
            for it in row.cells[ci].items() {
                let mut it = it.clone();
                match col_in_os {
                    Some(0) => {} // first order column: keys already order it
                    Some(i) => {
                        // compose(Π OST[1..=i] t)
                        let mut ord = OrdKey::empty();
                        for &oi in &os[..=i] {
                            ord = ord.compose(cell_order(&row.cells[oi]));
                        }
                        it.ord = Some(ord);
                    }
                    None => {
                        if os.is_empty() {
                            // No tuple order: mark locally unordered unless
                            // the item already carries one.
                        } else {
                            // compose(Π OST[1..m] t, order(k))
                            let mut ord = OrdKey::empty();
                            for &oi in &os {
                                ord = ord.compose(cell_order(&row.cells[oi]));
                            }
                            let own = it.order();
                            it.ord = Some(ord.compose(own));
                        }
                    }
                }
                if self.opts.counts {
                    it.count *= row.count;
                    it.abs = true;
                }
                items.push(it);
            }
        }
        self.stats.overriding += t0.elapsed();
        Ok(items)
    }

    fn group_by(
        &mut self,
        t: &XatTable,
        gcols: &[String],
        func: &GroupFunc,
        out: &mut XatTable,
    ) -> EResult<()> {
        let gis: Vec<usize> = gcols
            .iter()
            .map(|g| t.col_idx(g).ok_or_else(|| ExecError(format!("no column ${g}"))))
            .collect::<EResult<_>>()?;
        let fcol = match func {
            GroupFunc::Combine { col } | GroupFunc::Agg { col, .. } => {
                t.col_idx(col).ok_or_else(|| ExecError("group func column".into()))?
            }
        };
        // Value-based grouping.
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        // Grouping key: atomic values group by value, base nodes by node
        // identity, constructed nodes by their (reproducible) semantic id —
        // so groups align between initial computation and delta propagation.
        let value_key = |cell: &Cell| -> String {
            cell.items()
                .iter()
                .map(|it| match &it.r {
                    ItemRef::Val(v) => format!("v{v}"),
                    ItemRef::Base(k) => format!("k{k}"),
                    ItemRef::Cons(id) => format!("c{}", self.cons_node(*id).sem),
                })
                .collect::<Vec<_>>()
                .join("\u{2}")
        };
        for (ri, row) in t.rows.iter().enumerate() {
            let key: String =
                gis.iter().map(|&i| value_key(&row.cells[i])).collect::<Vec<_>>().join("\u{1}");
            match index.get(&key) {
                Some(&g) => groups[g].1.push(ri),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![ri]));
                }
            }
        }
        let os: Vec<usize> = t.order_schema.clone();
        for (_, rows) in groups {
            let first = &t.rows[rows[0]];
            let mut cells: Vec<Cell> = gis.iter().map(|&i| first.cells[i].clone()).collect();
            let gcount: i64 =
                if self.opts.counts { rows.iter().map(|&ri| t.rows[ri].count).sum() } else { 1 };
            match func {
                GroupFunc::Combine { .. } => {
                    // The nested Combine (§2.2.2 "GroupBy … Combine"): items
                    // of the group, with overriding order per Fig 4.3.
                    let t0 = Instant::now();
                    let mut items = Vec::new();
                    for &ri in &rows {
                        let row = &t.rows[ri];
                        for it in row.cells[fcol].items() {
                            let mut it = it.clone();
                            if !os.is_empty() {
                                let mut ord = OrdKey::empty();
                                for &oi in &os {
                                    ord = ord.compose(cell_order(&row.cells[oi]));
                                }
                                let own = it.order();
                                it.ord = Some(ord.compose(own));
                            }
                            if self.opts.counts {
                                it.count *= row.count;
                                it.abs = true;
                            }
                            items.push(it);
                        }
                    }
                    self.stats.overriding += t0.elapsed();
                    cells.push(Cell::seq(items));
                }
                GroupFunc::Agg { func, .. } => {
                    let mut vals: Vec<(Atomic, i64)> = Vec::new();
                    for &ri in &rows {
                        let row = &t.rows[ri];
                        for it in row.cells[fcol].items() {
                            vals.push((item_atomic(it, self.store), (it.count * row.count).max(1)));
                        }
                    }
                    let v = eval_agg(*func, &vals);
                    cells.push(Cell::one(Item {
                        r: ItemRef::Val(v),
                        ord: None,
                        count: 1,
                        abs: false,
                        delta: NavMode::Free,
                    }));
                }
            }
            out.rows.push(Row::with_count(cells, gcount));
        }
        Ok(())
    }

    fn tagger(
        &mut self,
        t: &XatTable,
        pattern: &Pattern,
        plan: &Plan,
        out: &mut XatTable,
    ) -> EResult<()> {
        let out_col = plan.schema.cols.last().expect("tagger output column");
        let multi_slot = pattern.content.len() > 1;
        for row in t.rows.iter() {
            // Resolve attributes.
            let mut attrs = Vec::with_capacity(pattern.attrs.len());
            for (k, slot) in &pattern.attrs {
                let v = match slot {
                    PatSlot::Text(s) => s.clone(),
                    PatSlot::Col(c) => {
                        let i = t.col_idx(c).ok_or_else(|| ExecError(format!("no column ${c}")))?;
                        row.cells[i]
                            .items()
                            .iter()
                            .map(|it| item_atomic(it, self.store).0)
                            .collect::<Vec<_>>()
                            .join(" ")
                    }
                };
                attrs.push((k.clone(), v));
            }
            // Collect children with slot-order prefixes (XML Union semantics).
            let t_over = Instant::now();
            let mut children = Vec::new();
            for (si, slot) in pattern.content.iter().enumerate() {
                match slot {
                    PatSlot::Text(s) => {
                        let mut it = Item::val(s.clone());
                        if multi_slot {
                            it.prefix_ord(OrdAtom::Key(FlexKey::root(flexkey::Seg::nth(si))));
                        }
                        children.push(it);
                    }
                    PatSlot::Col(c) => {
                        let i = t.col_idx(c).ok_or_else(|| ExecError(format!("no column ${c}")))?;
                        for it in row.cells[i].items() {
                            let mut it = it.clone();
                            if multi_slot {
                                it.prefix_ord(OrdAtom::Key(FlexKey::root(flexkey::Seg::nth(si))));
                            }
                            // Children keep *relative* multiplicities; the
                            // constructing tuple's count reaches them through
                            // the parent at materialization (Table 6.1).
                            children.push(it);
                        }
                    }
                }
            }
            self.stats.overriding += t_over.elapsed();
            // Generate the semantic identifier (composeNodeIds, Fig 4.4).
            let sem = if self.opts.semantic_ids {
                let t_sem = Instant::now();
                let sem = self.compose_node_id(t, row, pattern, out_col);
                self.stats.semid += t_sem.elapsed();
                sem
            } else {
                self.synth += 1;
                SemId::constructed(vec![LngAtom::Val(format!("#{}", self.synth))])
            };
            let count = if self.opts.counts { row.count } else { 1 };
            let id = ConsId(self.cons.len() as u32);
            self.cons.push(ConsNode { sem, name: pattern.name.clone(), attrs, children, count });
            let mut cells = row.cells.clone();
            cells.push(Cell::one(Item::cons(id)));
            out.rows.push(Row::with_count(cells, row.count));
        }
        Ok(())
    }

    /// `composeNodeIds` (Fig 4.4): the id body comes from the content
    /// columns' lineage contexts resolved on this tuple; the order prefix
    /// from the output column's order context.
    fn compose_node_id(
        &self,
        t: &XatTable,
        row: &Row,
        pattern: &Pattern,
        out_col: &ColInfo,
    ) -> SemId {
        let content = pattern.content_cols();
        // The id body starts with the constructor's plan position (its
        // output column, stable across initial and IMP plans). This is our
        // realization of §4.2.2 footnote 3: Combine assigns the ambiguous
        // "*" lineage, and "when this collection is unioned or merged with
        // other results the Context … is expanded to reflect uniqueness" —
        // without it, two constructors over Star-lineage collections (or
        // two same-lineage siblings) would collide and wrongly fuse.
        let mut atoms = vec![LngAtom::Val(out_col.name.clone())];
        // The constructing tuple's identity — its Evaluation Context Columns
        // (Definition 4.2.3 / Theorem 4.3.1) — is part of every constructed
        // id: two tuples that differ in any ECC column construct *distinct*
        // result nodes even when the pattern's content columns coincide
        // (e.g. `<hit>{$e/price}</hit>` over a join: one node per ($b,$e)
        // pair, not per $e).
        let ecc = t.ecc();
        for &i in &ecc {
            lineage_atoms_of_cell(&row.cells[i], self, &mut atoms);
        }
        if content.is_empty() && ecc.is_empty() {
            atoms.push(LngAtom::Star);
        }
        for c in &content {
            self.resolve_lineage(t, row, c, &mut atoms);
        }
        let sem = SemId::constructed(atoms);
        match &out_col.cxt.ord {
            crate::context::OrdSpec::Null => sem.with_no_order(),
            crate::context::OrdSpec::Empty => sem,
            crate::context::OrdSpec::Cols(cols) => {
                let mut ord = OrdKey::empty();
                for c in cols {
                    if let Some(i) = t.col_idx(c) {
                        ord = ord.compose(cell_order(&row.cells[i]));
                    }
                }
                sem.with_ord(ord)
            }
        }
    }

    /// Resolve the lineage context of column `col` on `row` into id atoms
    /// (§4.2.1): through the column's lineage spec when it references other
    /// columns, or from the cell's own nodes when self-referential.
    fn resolve_lineage(&self, t: &XatTable, row: &Row, col: &str, out: &mut Vec<LngAtom>) {
        let Some(ci) = t.col_idx(col) else { return };
        match &t.cols[ci].cxt.lng {
            crate::context::LngSpec::Star => out.push(LngAtom::Star),
            crate::context::LngSpec::SelfRef => lineage_atoms_of_cell(&row.cells[ci], self, out),
            crate::context::LngSpec::Cols(refs) => {
                for r in refs {
                    match t.col_idx(&r.col) {
                        Some(i) => lineage_atoms_of_cell(&row.cells[i], self, out),
                        None => out.push(LngAtom::Null),
                    }
                }
            }
        }
    }
}

/// Lineage atoms contributed by one cell: keys for base nodes, values for
/// atomics, the constructed node's own id body for constructed nodes.
fn lineage_atoms_of_cell(cell: &Cell, ex: &Executor<'_>, out: &mut Vec<LngAtom>) {
    if cell.is_null() {
        out.push(LngAtom::Null);
        return;
    }
    for it in cell.items() {
        match &it.r {
            ItemRef::Base(k) => out.push(LngAtom::Key(k.clone())),
            ItemRef::Val(v) => out.push(LngAtom::Val(v.0.clone())),
            ItemRef::Cons(id) => match &ex.cons_node(*id).sem.body {
                flexkey::semid::SemBody::Base(k) => out.push(LngAtom::Key(k.clone())),
                flexkey::semid::SemBody::Constructed(atoms) => out.extend(atoms.iter().cloned()),
            },
        }
    }
}

/// The order key represented by a (single-item) cell.
fn cell_order(cell: &Cell) -> OrdKey {
    match cell.as_one() {
        Some(it) => it.order(),
        None => OrdKey::empty(),
    }
}

/// The atomic value of an item (string value for base nodes).
pub fn item_atomic(item: &Item, store: &Store) -> Atomic {
    match &item.r {
        ItemRef::Val(v) => v.clone(),
        ItemRef::Base(k) => Atomic(store.string_value(k)),
        ItemRef::Cons(_) => Atomic::new(""),
    }
}

/// Order atom of an item for Order By keys.
fn item_ord_value(item: &Item, store: &Store) -> OrdAtom {
    item_atomic(item, store).ord_atom()
}

/// Existential comparison between two value sequences.
fn exists_cmp(a: &[Atomic], op: CmpOp, b: &[Atomic]) -> bool {
    a.iter().any(|x| {
        b.iter().any(|y| {
            let c = x.val_cmp(y);
            match op {
                CmpOp::Eq => c == Ordering::Equal,
                CmpOp::Ne => c != Ordering::Equal,
                CmpOp::Lt => c == Ordering::Less,
                CmpOp::Le => c != Ordering::Greater,
                CmpOp::Gt => c == Ordering::Greater,
                CmpOp::Ge => c != Ordering::Less,
            }
        })
    })
}

/// A predicate with each conjunct's operands swapped (so `semifiltered` can
/// treat the left table as the "delta" side when restricting B-state plans).
/// Remove from `base` the tuples that ECC-match a tuple of `delta`
/// (Definition 4.2.4): the stored right-input state minus the delta rows.
/// Each delta row cancels at most one base row.
fn ecc_subtract(base: &XatTable, delta: &XatTable) -> XatTable {
    let ecc = base.ecc();
    let key_of = |t: &XatTable, row: &Row| -> String {
        let mut s = String::new();
        for &i in &ecc {
            let Some(cell) = row.cells.get(i) else { continue };
            let _ = t;
            for it in cell.items() {
                match &it.r {
                    ItemRef::Base(k) => {
                        s.push('k');
                        s.push_str(&k.to_string());
                    }
                    ItemRef::Val(v) => {
                        s.push('v');
                        s.push_str(&v.0);
                    }
                    ItemRef::Cons(_) => s.push('c'),
                }
                s.push('\u{2}');
            }
            s.push('\u{1}');
        }
        s
    };
    let mut removals: HashMap<String, usize> = HashMap::new();
    for dr in &delta.rows {
        *removals.entry(key_of(delta, dr)).or_insert(0) += 1;
    }
    let mut out = XatTable::new(base.cols.clone());
    out.order_schema = base.order_schema.clone();
    for row in &base.rows {
        let k = key_of(base, row);
        if let Some(n) = removals.get_mut(&k) {
            if *n > 0 {
                *n -= 1;
                continue;
            }
        }
        out.rows.push(row.clone());
    }
    out
}

fn swap_pred(p: &Pred) -> Pred {
    Pred { conjuncts: p.conjuncts.iter().map(|(a, op, b)| (b.clone(), *op, a.clone())).collect() }
}

fn atom_key(a: &Atomic) -> String {
    // Numeric-aware hash key so 70 == 70.0 joins.
    match a.as_num() {
        Some(n) => format!("n{n}"),
        None => format!("s{}", a.0),
    }
}

/// Evaluate an aggregate over (value, multiplicity) pairs.
fn eval_agg(func: AggFunc, vals: &[(Atomic, i64)]) -> Atomic {
    match func {
        AggFunc::Count => Atomic::new(vals.iter().map(|(_, c)| *c).sum::<i64>().to_string()),
        AggFunc::Sum | AggFunc::Avg => {
            let mut sum = 0.0;
            let mut n = 0i64;
            for (v, c) in vals {
                if let Some(x) = v.as_num() {
                    sum += x * *c as f64;
                    n += *c;
                }
            }
            if func == AggFunc::Sum {
                Atomic::new(fmt_num(sum))
            } else if n > 0 {
                Atomic::new(fmt_num(sum / n as f64))
            } else {
                Atomic::new("")
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Atomic> = None;
            for (v, _) in vals {
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let keep_v = match func {
                            AggFunc::Min => v.val_cmp(&b) == Ordering::Less,
                            _ => v.val_cmp(&b) == Ordering::Greater,
                        };
                        if keep_v {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or_else(|| Atomic::new(""))
        }
    }
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}
