//! # xat — the XAT XML algebra and execution engine
//!
//! A from-scratch implementation of the XAT algebra \[ZPR02\] that the paper's
//! Rainbow engine uses (Ch. 2), extended with the dissertation's three core
//! mechanisms:
//!
//! * the **order solution** of Chapter 3 — per-table *Order Schemas*
//!   (Table 3.1), overriding-order keys assigned by Combine / XML Union /
//!   Tagger (Fig 3.3), non-ordered bag semantics for all intermediate data,
//!   and partial sorting only at final result generation;
//! * the **Context Schema / semantic identifier** machinery of Chapter 4 —
//!   per-column lineage+order specifications (Table 4.1), the node-level
//!   operations of Table 4.2 (Figs 4.3–4.5), and ECC-based tuple matching;
//! * the **count annotations** of Chapter 6 — derivation counts computed
//!   through every operator (Tables 6.1/6.2), enabling the counting solution
//!   for delete updates.

pub mod context;
pub mod exec;
pub mod extent;
pub mod plan;
pub mod table;
pub mod translate;
pub mod value;
pub mod wirecodec;

pub use context::{ContextSchema, LngCol, LngSpec, OrdSpec};
pub use exec::{ConsNode, ExecError, ExecOptions, ExecStats, Executor};
pub use extent::{deep_union_siblings, VNode, ViewExtent};
pub use plan::{annotate, GroupFunc, OpKind, Operand, PatSlot, Pattern, Plan, Pred};
pub use table::{ColInfo, Row, XatTable};
pub use translate::{translate_query, TranslateError};
pub use value::{Atomic, Cell, ConsId, Item, ItemRef};
