//! [`wire`] codec impls for materialized extents — the snapshot layer
//! persists each view's [`ViewExtent`] verbatim (semantic ids, count
//! annotations, and result order), so recovery reinstalls extents without
//! recomputing them.
//!
//! Encodings:
//!
//! * [`VNode`] — semantic id + node data + signed count + child sequence
//!   (recursive, children in result order);
//! * [`ViewExtent`] — root sequence.

use crate::extent::{VNode, ViewExtent};
use flexkey::SemId;
use wire::{put_slice, Decode, Encode, Reader, WireError};
use xmlstore::NodeData;

impl Encode for VNode {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sem.encode(out);
        self.data.encode(out);
        self.count.encode(out);
        put_slice(out, &self.children);
    }
}

impl Decode for VNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VNode {
            sem: SemId::decode(r)?,
            data: NodeData::decode(r)?,
            count: r.i64()?,
            children: Vec::<VNode>::decode(r)?,
        })
    }
}

impl Encode for ViewExtent {
    fn encode(&self, out: &mut Vec<u8>) {
        put_slice(out, &self.roots);
    }
}

impl Decode for ViewExtent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ViewExtent { roots: Vec::<VNode>::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexkey::{FlexKey, LngAtom, OrdAtom, OrdKey};

    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(wire::from_slice::<T>(&wire::to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn vnode_roundtrip_preserves_ids_counts_order() {
        let mut group = VNode::new(
            SemId::constructed(vec![LngAtom::Val("1994".into())])
                .with_ord(OrdKey::from_atom(OrdAtom::text("1994"))),
            NodeData::Element { name: "yGroup".into(), attrs: vec![("Y".into(), "1994".into())] },
        );
        group.count = 2;
        group.children.push(VNode::new(
            SemId::base(FlexKey::parse("b.b.b").unwrap()),
            NodeData::element("title"),
        ));
        group.children[0]
            .children
            .push(VNode::new(SemId::base(FlexKey::parse("b.b.b.b").unwrap()), NodeData::text("T")));
        rt(group.clone());
        rt(ViewExtent { roots: vec![group] });
        rt(ViewExtent::default());
    }

    #[test]
    fn extent_roundtrip_serializes_identically() {
        let mut root = VNode::new(SemId::constructed(vec![LngAtom::Star]), NodeData::element("r"));
        let mut del = VNode::new(
            SemId::constructed(vec![LngAtom::Val("x".into())]).with_no_order(),
            NodeData::element("gone"),
        );
        del.count = -1;
        root.children.push(del);
        let extent = ViewExtent { roots: vec![root] };
        let back: ViewExtent = wire::from_slice(&wire::to_vec(&extent)).unwrap();
        assert_eq!(back.to_xml(), extent.to_xml());
        assert_eq!(back, extent);
    }
}
