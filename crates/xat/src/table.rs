//! The XAT table (§2.2.1): an order-sensitive table whose cells store XML
//! node references or sequences.
//!
//! Internally tuples live in **non-ordered bag semantics** (§3.4.3): the
//! physical row order is insignificant. Order information is carried by
//! (a) the table's *Order Schema* — the subset of columns whose FlexKeys
//! encode the tuples' relative order (Definition 3.3.1) — and (b) the
//! overriding-order annotations on items.

use crate::context::ContextSchema;
use crate::value::Cell;
use flexkey::OrdKey;
use std::fmt;

/// Column metadata: the name (a `$var` binding or generated `$colN`) and the
/// column's Context Schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColInfo {
    pub name: String,
    pub cxt: ContextSchema,
}

impl ColInfo {
    pub fn new(name: impl Into<String>) -> ColInfo {
        ColInfo { name: name.into(), cxt: ContextSchema::default() }
    }
}

/// One tuple: cells plus a derivation count (Ch. 6 counting: a tuple's count
/// is the product of the counts of the source tuples it derives from; delta
/// tuples from delete updates carry negative counts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    pub cells: Vec<Cell>,
    pub count: i64,
}

impl Row {
    pub fn new(cells: Vec<Cell>) -> Row {
        Row { cells, count: 1 }
    }

    pub fn with_count(cells: Vec<Cell>, count: i64) -> Row {
        Row { cells, count }
    }
}

/// An XAT table.
#[derive(Clone, Debug, Default)]
pub struct XatTable {
    pub cols: Vec<ColInfo>,
    /// Indices (into `cols`) of the Order Schema columns (Table 3.1).
    pub order_schema: Vec<usize>,
    pub rows: Vec<Row>,
}

impl XatTable {
    pub fn new(cols: Vec<ColInfo>) -> XatTable {
        XatTable { cols, order_schema: Vec::new(), rows: Vec::new() }
    }

    /// Index of a column by name.
    pub fn col_idx(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    /// Cell of `row` in the column named `name`.
    pub fn cell<'a>(&self, row: &'a Row, name: &str) -> Option<&'a Cell> {
        self.col_idx(name).and_then(|i| row.cells.get(i))
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The tuple order key of a row, derived from the Order Schema columns
    /// (Definition 3.3.2: lexicographic comparison over the order columns).
    /// Used only where tuple order must be *extracted* (Combine, final
    /// result) — never to keep rows physically sorted.
    pub fn row_order(&self, row: &Row) -> OrdKey {
        let mut ord = OrdKey::empty();
        for &i in &self.order_schema {
            if let Some(item) = row.cells.get(i).and_then(|c| c.as_one()) {
                ord = ord.compose(item.order());
            }
        }
        ord
    }

    /// Names of the Order Schema columns.
    pub fn order_cols(&self) -> Vec<&str> {
        self.order_schema.iter().map(|&i| self.cols[i].name.as_str()).collect()
    }

    /// Indices of the ECC columns (Definition 4.2.3).
    pub fn ecc(&self) -> Vec<usize> {
        self.cols.iter().enumerate().filter(|(_, c)| c.cxt.in_ecc()).map(|(i, _)| i).collect()
    }

    /// Tuple match by ECC (Definition 4.2.4): equal identities/values on all
    /// ECC columns (nulls match nulls, Proposition 4.2.1).
    pub fn rows_match(&self, a: &Row, b: &Row) -> bool {
        let ecc = self.ecc();
        if ecc.is_empty() {
            return true;
        }
        ecc.iter().all(|&i| a.cells[i].ecc_eq(&b.cells[i]))
    }
}

impl fmt::Display for XatTable {
    /// Debug rendering in the style of the paper's figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .cols
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let marker = if self.order_schema.contains(&i) { "*" } else { "" };
                format!("${}{}{}", c.name, marker, c.cxt)
            })
            .collect();
        writeln!(f, "| {} |", names.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .cells
                .iter()
                .map(|c| match c {
                    Cell::Null => "⊥".to_string(),
                    Cell::One(i) => format!("{:?}", i.r),
                    Cell::Seq(v) => format!("{{{}}}", v.len()),
                })
                .collect();
            writeln!(f, "| {} | x{}", cells.join(" | "), row.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{LngCol, LngSpec, OrdSpec};
    use crate::value::Item;
    use flexkey::FlexKey;

    fn k(s: &str) -> FlexKey {
        FlexKey::parse(s).unwrap()
    }

    fn table() -> XatTable {
        let mut t = XatTable::new(vec![
            ColInfo { name: "b".into(), cxt: ContextSchema::source() },
            ColInfo {
                name: "y".into(),
                cxt: ContextSchema::new(
                    OrdSpec::Cols(vec!["b".into()]),
                    LngSpec::Cols(vec![LngCol::plain("b")]),
                ),
            },
        ]);
        t.order_schema = vec![0];
        t.rows.push(Row::new(vec![Cell::one(Item::base(k("b.b"))), Cell::one(Item::val("1994"))]));
        t.rows.push(Row::new(vec![Cell::one(Item::base(k("b.f"))), Cell::one(Item::val("2000"))]));
        t
    }

    #[test]
    fn col_lookup_and_cells() {
        let t = table();
        assert_eq!(t.col_idx("y"), Some(1));
        assert_eq!(t.col_idx("zz"), None);
        let c = t.cell(&t.rows[0], "y").unwrap();
        assert_eq!(c.as_one().unwrap().as_val().unwrap().as_str(), "1994");
    }

    #[test]
    fn row_order_follows_order_schema() {
        let t = table();
        let o0 = t.row_order(&t.rows[0]);
        let o1 = t.row_order(&t.rows[1]);
        assert!(o0 < o1);
    }

    #[test]
    fn ecc_is_self_lineage_columns() {
        let t = table();
        assert_eq!(t.ecc(), vec![0]);
    }

    #[test]
    fn rows_match_by_ecc_only() {
        let t = table();
        let a = Row::new(vec![Cell::one(Item::base(k("b.b"))), Cell::one(Item::val("x"))]);
        let b = Row::new(vec![Cell::one(Item::base(k("b.b"))), Cell::one(Item::val("zzz"))]);
        assert!(t.rows_match(&a, &b), "non-ECC columns are ignored");
        let c = Row::new(vec![Cell::one(Item::base(k("b.f"))), Cell::one(Item::val("x"))]);
        assert!(!t.rows_match(&a, &c));
    }
}
