//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) `rand` 0.8 surface the repo uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open ranges (integer
//! and `f64`), and `Rng::gen_bool`. The generator is xoshiro256** seeded
//! via SplitMix64 — deterministic per seed, which is all the seeded data
//! generators require.

use std::ops::Range;

/// Seeding by `u64`, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The raw generator interface: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, `lo < hi` required).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform sampling of `[0, n)` by rejection: draw below the
/// largest multiple of `n`, then reduce.
fn uniform_u64(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    let limit = u64::MAX - (u64::MAX % n);
    loop {
        let x = rng.next_u64();
        if x < limit {
            return x % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi);
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — the shim's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
