//! Abstract syntax for the XQuery subset of Figure 2.1.

use std::fmt;

/// Entry point of a path expression: a document or a bound variable
/// (after normalization every XPath "must have a variable or a document as
/// its entry point", §2.3.1 Rule 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathSource {
    /// `doc("bib.xml")` / `document("bib.xml")`.
    Doc(String),
    /// `$b`.
    Var(String),
}

/// Axes supported by the paper (§2.1): child `/` and descendant `//`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    Child,
    Descendant,
}

/// Node tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeTest {
    /// Element name test.
    Name(String),
    /// Attribute access `@name`.
    Attr(String),
    /// `text()`.
    Text,
    /// `*`.
    Wildcard,
}

/// One location step, with an optional predicate (normalization hoists
/// comparison predicates into `where` clauses; positional predicates are only
/// permitted in update-target paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicate: Option<StepPredicate>,
}

impl Step {
    pub fn child(test: NodeTest) -> Step {
        Step { axis: Axis::Child, test, predicate: None }
    }

    pub fn descendant(test: NodeTest) -> Step {
        Step { axis: Axis::Descendant, test, predicate: None }
    }
}

/// A predicate attached to a location step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepPredicate {
    /// `[relative/path = "literal"]` — hoisted to `where` by normalization.
    Cmp { path: Vec<Step>, op: CmpOp, value: String },
    /// `[2]` — positional; only meaningful in update-target paths
    /// (Figure 1.3(a): `/bib/book[2]`). 1-based, as in XPath.
    Position(usize),
}

/// A (rooted) path expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathExpr {
    pub source: PathSource,
    pub steps: Vec<Step>,
}

impl PathExpr {
    pub fn new(source: PathSource, steps: Vec<Step>) -> PathExpr {
        PathExpr { source, steps }
    }
}

/// Comparison operators of the ComparisonExpr production.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Aggregate functions (§2.1: "some aggregate functions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Boolean conditions in `where` clauses: conjunctions of comparisons.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoolExpr {
    Cmp { lhs: Expr, op: CmpOp, rhs: Expr },
    And(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Flatten a conjunction into its comparison leaves.
    pub fn conjuncts(&self) -> Vec<&BoolExpr> {
        match self {
            BoolExpr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            leaf => vec![leaf],
        }
    }

    /// Re-assemble a conjunction from parts (`None` if empty).
    pub fn conjoin(parts: Vec<BoolExpr>) -> Option<BoolExpr> {
        parts.into_iter().reduce(|a, b| BoolExpr::And(Box::new(a), Box::new(b)))
    }
}

/// `order by` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderSpec {
    pub expr: Expr,
    pub descending: bool,
}

/// One `for $v in <expr>` binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForBind {
    pub var: String,
    pub source: Expr,
}

/// A FLWOR expression (after normalization, `let` clauses are gone).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Flwor {
    pub fors: Vec<ForBind>,
    pub lets: Vec<(String, Expr)>,
    pub where_: Option<BoolExpr>,
    pub order_by: Vec<OrderSpec>,
    pub ret: Option<Expr>,
}

/// Attribute value in a direct element constructor: literal text or an
/// embedded expression (`Y="{$y}"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrValue {
    Literal(String),
    Expr(Expr),
}

/// A direct element constructor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElemCons {
    pub name: String,
    pub attrs: Vec<(String, AttrValue)>,
    pub children: Vec<Expr>,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    Path(PathExpr),
    /// A bare variable reference `$v`.
    Var(String),
    /// `distinct-values(expr)`.
    DistinctValues(Box<Expr>),
    /// An aggregate function application.
    Agg {
        func: AggFunc,
        arg: Box<Expr>,
    },
    Flwor(Box<Flwor>),
    Elem(Box<ElemCons>),
    /// Comma sequence (`PrimaryExpr*` in constructors / return clauses).
    Seq(Vec<Expr>),
    /// String literal.
    Literal(String),
    /// Numeric literal (kept textual for faithful value semantics).
    Number(String),
}

impl Expr {
    /// Convenience: view as a path whose source is a variable.
    pub fn as_var_path(&self) -> Option<(&str, &[Step])> {
        match self {
            Expr::Var(v) => Some((v, &[])),
            Expr::Path(p) => match &p.source {
                PathSource::Var(v) => Some((v, &p.steps)),
                PathSource::Doc(_) => None,
            },
            _ => None,
        }
    }

    /// All free variables referenced by this expression.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Path(p) => {
                if let PathSource::Var(v) = &p.source {
                    out.push(v.clone());
                }
            }
            Expr::DistinctValues(e) | Expr::Agg { arg: e, .. } => e.collect_free_vars(out),
            Expr::Seq(es) => es.iter().for_each(|e| e.collect_free_vars(out)),
            Expr::Elem(c) => {
                for (_, v) in &c.attrs {
                    if let AttrValue::Expr(e) = v {
                        e.collect_free_vars(out);
                    }
                }
                c.children.iter().for_each(|e| e.collect_free_vars(out));
            }
            Expr::Flwor(f) => {
                // Variables bound inside the FLWOR shadow outer ones.
                let mut inner = Vec::new();
                for b in &f.fors {
                    b.source.collect_free_vars(&mut inner);
                }
                for (_, e) in &f.lets {
                    e.collect_free_vars(&mut inner);
                }
                if let Some(w) = &f.where_ {
                    collect_bool_vars(w, &mut inner);
                }
                for o in &f.order_by {
                    o.expr.collect_free_vars(&mut inner);
                }
                if let Some(r) = &f.ret {
                    r.collect_free_vars(&mut inner);
                }
                let bound: Vec<&str> = f
                    .fors
                    .iter()
                    .map(|b| b.var.as_str())
                    .chain(f.lets.iter().map(|(v, _)| v.as_str()))
                    .collect();
                out.extend(inner.into_iter().filter(|v| !bound.contains(&v.as_str())));
            }
            Expr::Literal(_) | Expr::Number(_) => {}
        }
    }
}

pub(crate) fn collect_bool_vars(b: &BoolExpr, out: &mut Vec<String>) {
    match b {
        BoolExpr::Cmp { lhs, rhs, .. } => {
            lhs.collect_free_vars(out);
            rhs.collect_free_vars(out);
        }
        BoolExpr::And(a, c) => {
            collect_bool_vars(a, out);
            collect_bool_vars(c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten() {
        let c1 = BoolExpr::Cmp {
            lhs: Expr::Var("a".into()),
            op: CmpOp::Eq,
            rhs: Expr::Literal("x".into()),
        };
        let c2 = BoolExpr::Cmp {
            lhs: Expr::Var("b".into()),
            op: CmpOp::Lt,
            rhs: Expr::Number("3".into()),
        };
        let c3 = BoolExpr::Cmp {
            lhs: Expr::Var("c".into()),
            op: CmpOp::Gt,
            rhs: Expr::Number("4".into()),
        };
        let all = BoolExpr::And(
            Box::new(BoolExpr::And(Box::new(c1.clone()), Box::new(c2.clone()))),
            Box::new(c3.clone()),
        );
        assert_eq!(all.conjuncts(), vec![&c1, &c2, &c3]);
        let rebuilt = BoolExpr::conjoin(vec![c1, c2, c3]).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
    }

    #[test]
    fn free_vars_respect_binding() {
        // for $b in doc(...)/bib/book return <x>{$b/title}{$y}</x> — $y free, $b bound.
        let inner = Flwor {
            fors: vec![ForBind {
                var: "b".into(),
                source: Expr::Path(PathExpr::new(
                    PathSource::Doc("bib.xml".into()),
                    vec![Step::child(NodeTest::Name("bib".into()))],
                )),
            }],
            ret: Some(Expr::Seq(vec![
                Expr::Path(PathExpr::new(
                    PathSource::Var("b".into()),
                    vec![Step::child(NodeTest::Name("title".into()))],
                )),
                Expr::Var("y".into()),
            ])),
            ..Default::default()
        };
        let e = Expr::Flwor(Box::new(inner));
        assert_eq!(e.free_vars(), vec!["y".to_string()]);
    }

    #[test]
    fn as_var_path() {
        let p = Expr::Path(PathExpr::new(
            PathSource::Var("b".into()),
            vec![Step::child(NodeTest::Name("title".into()))],
        ));
        let (v, steps) = p.as_var_path().unwrap();
        assert_eq!(v, "b");
        assert_eq!(steps.len(), 1);
        assert!(Expr::Literal("x".into()).as_var_path().is_none());
    }
}
