//! # xquery-lang — parser, AST and normalization for the paper's XQuery subset
//!
//! Implements the language layer of the system (Ch. 2):
//!
//! * [`ast`] — the abstract syntax of the Figure 2.1 grammar: FLWOR
//!   expressions, XPath expressions over the `/` and `//` axes with
//!   predicates, direct element constructors, `distinct-values`, and
//!   aggregate functions.
//! * [`parser`] — a recursive-descent parser with modal lexing for element
//!   constructors (text/`{expr}` content).
//! * [`mod@normalize`] — the source-level normalization of §2.3.1: let-variable
//!   inlining (Rule 1), splitting of multi-variable `for` clauses (Rule 2,
//!   represented structurally), and hoisting of XPath predicates into `where`
//!   clauses (Rule 3).
//! * [`update`] — the XQuery update language of \[TIHW01\] used for source
//!   updates (Figure 1.3): `insert … before/after/into`, `delete`,
//!   `replace … with`.
//! * [`ops`] — typed update operations ([`UpdateOp`] / [`UpdateBatch`]):
//!   the programmatic integration contract the maintenance stack consumes,
//!   constructible via builders or parsed once from script text.

pub mod ast;
pub mod normalize;
pub mod ops;
pub mod parser;
pub mod update;
pub mod wirecodec;

pub use ast::*;
pub use normalize::normalize;
pub use ops::{parse_path, InsertPosition, OpAction, OpKind, UpdateBatch, UpdateOp};
pub use parser::{parse_query, QueryParseError};
pub use update::{parse_updates, UpdateAction, UpdateStmt};
