//! Recursive-descent parser for the XQuery subset of Figure 2.1.
//!
//! The lexer is modal: inside direct element constructors, content is raw
//! text until `<` (nested constructor / close tag) or `{` (embedded
//! expression), mirroring XQuery's grammar. Keywords are matched
//! case-insensitively (the paper's own examples mix `for` and `FOR`).

use crate::ast::*;
use std::fmt;

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

type PResult<T> = Result<T, QueryParseError>;

/// Parse a complete query expression.
pub fn parse_query(input: &str) -> PResult<Expr> {
    let mut p = P { b: input.as_bytes(), pos: 0 };
    p.ws();
    let e = p.expr_single()?;
    p.ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing content after query"));
    }
    Ok(e)
}

pub(crate) struct P<'a> {
    pub b: &'a [u8],
    pub pos: usize,
}

impl<'a> P<'a> {
    pub(crate) fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError { offset: self.pos, message: m.into() }
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    pub(crate) fn ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            // (: comments :)
            if self.b[self.pos..].starts_with(b"(:") {
                if let Some(end) = self.find(":)") {
                    self.pos = end + 2;
                    continue;
                }
            }
            break;
        }
    }

    fn find(&self, needle: &str) -> Option<usize> {
        let n = needle.as_bytes();
        (self.pos..=self.b.len().saturating_sub(n.len())).find(|&i| &self.b[i..i + n.len()] == n)
    }

    /// Case-insensitive keyword match with a word boundary after it.
    pub(crate) fn kw(&mut self, word: &str) -> bool {
        let w = word.as_bytes();
        if self.b.len() - self.pos < w.len() {
            return false;
        }
        let got = &self.b[self.pos..self.pos + w.len()];
        if !got.eq_ignore_ascii_case(w) {
            return false;
        }
        // boundary: next byte must not be a name char
        if let Some(&c) = self.b.get(self.pos + w.len()) {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                return false;
            }
        }
        self.pos += w.len();
        self.ws();
        true
    }

    pub(crate) fn expect(&mut self, tok: &str) -> PResult<()> {
        if self.b[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            self.ws();
            Ok(())
        } else {
            Err(self.err(format!("expected '{tok}'")))
        }
    }

    fn try_tok(&mut self, tok: &str) -> bool {
        if self.b[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            self.ws();
            true
        } else {
            false
        }
    }

    pub(crate) fn name(&mut self) -> PResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.pos]).into_owned())
    }

    pub(crate) fn var(&mut self) -> PResult<String> {
        self.expect_raw(b'$')?;
        let n = self.name()?;
        self.ws();
        Ok(n)
    }

    fn expect_raw(&mut self, c: u8) -> PResult<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn string_lit(&mut self) -> PResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected string literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek().is_some_and(|c| c != quote) {
            self.pos += 1;
        }
        if self.peek().is_none() {
            return Err(self.err("unterminated string literal"));
        }
        let s = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.pos += 1;
        self.ws();
        Ok(s)
    }

    // ---- expressions -------------------------------------------------

    /// ExprSingle := FLWORExpr | comparison-free operand forms
    pub(crate) fn expr_single(&mut self) -> PResult<Expr> {
        if self.peeking_kw("for") || self.peeking_kw("let") {
            return Ok(Expr::Flwor(Box::new(self.flwor()?)));
        }
        self.operand()
    }

    fn peeking_kw(&self, word: &str) -> bool {
        let w = word.as_bytes();
        if self.b.len() - self.pos < w.len() {
            return false;
        }
        let got = &self.b[self.pos..self.pos + w.len()];
        got.eq_ignore_ascii_case(w)
            && self
                .b
                .get(self.pos + w.len())
                .is_none_or(|&c| !(c.is_ascii_alphanumeric() || c == b'_' || c == b'-'))
    }

    /// A primary operand: constructor, path, var, literal, function call.
    pub(crate) fn operand(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(b'<') => Ok(Expr::Elem(Box::new(self.elem_constructor()?))),
            Some(b'$') => {
                let v = self.var()?;
                let steps = self.steps()?;
                if steps.is_empty() {
                    Ok(Expr::Var(v))
                } else {
                    Ok(Expr::Path(PathExpr::new(PathSource::Var(v), steps)))
                }
            }
            Some(b'"') | Some(b'\'') => Ok(Expr::Literal(self.string_lit()?)),
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'.') {
                    self.pos += 1;
                }
                let n = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
                self.ws();
                Ok(Expr::Number(n))
            }
            Some(b'(') => {
                self.expect("(")?;
                let e = self.expr_single()?;
                self.expect(")")?;
                Ok(e)
            }
            _ => {
                // function call: doc(), document(), distinct-values(), aggregates
                let save = self.pos;
                let name = self.name()?;
                self.ws();
                match name.to_ascii_lowercase().as_str() {
                    "doc" | "document" => {
                        self.expect("(")?;
                        let d = self.string_lit()?;
                        self.expect(")")?;
                        let steps = self.steps()?;
                        Ok(Expr::Path(PathExpr::new(PathSource::Doc(d), steps)))
                    }
                    "distinct-values" => {
                        self.expect("(")?;
                        let e = self.expr_single()?;
                        self.expect(")")?;
                        Ok(Expr::DistinctValues(Box::new(e)))
                    }
                    "count" | "sum" | "avg" | "min" | "max" => {
                        let func = match name.to_ascii_lowercase().as_str() {
                            "count" => AggFunc::Count,
                            "sum" => AggFunc::Sum,
                            "avg" => AggFunc::Avg,
                            "min" => AggFunc::Min,
                            _ => AggFunc::Max,
                        };
                        self.expect("(")?;
                        let e = self.expr_single()?;
                        self.expect(")")?;
                        Ok(Expr::Agg { func, arg: Box::new(e) })
                    }
                    _ => {
                        self.pos = save;
                        Err(self.err(format!("unexpected token near '{name}'")))
                    }
                }
            }
        }
    }

    /// Location steps: (`/` | `//`) NodeTest Predicate? …
    pub(crate) fn steps(&mut self) -> PResult<Vec<Step>> {
        let mut steps = Vec::new();
        loop {
            let axis = if self.b[self.pos..].starts_with(b"//") {
                self.pos += 2;
                Axis::Descendant
            } else if self.peek() == Some(b'/') {
                self.pos += 1;
                Axis::Child
            } else {
                break;
            };
            let test = if self.peek() == Some(b'@') {
                self.pos += 1;
                NodeTest::Attr(self.name()?)
            } else if self.peek() == Some(b'*') {
                self.pos += 1;
                NodeTest::Wildcard
            } else {
                let n = self.name()?;
                if n == "text" && self.b[self.pos..].starts_with(b"()") {
                    self.pos += 2;
                    NodeTest::Text
                } else {
                    NodeTest::Name(n)
                }
            };
            let predicate =
                if self.peek() == Some(b'[') { Some(self.step_predicate()?) } else { None };
            steps.push(Step { axis, test, predicate });
        }
        self.ws();
        Ok(steps)
    }

    fn step_predicate(&mut self) -> PResult<StepPredicate> {
        self.expect("[")?;
        // positional?
        if self.peek().is_some_and(|c| c.is_ascii_digit()) {
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            let n: usize = std::str::from_utf8(&self.b[start..self.pos])
                .unwrap()
                .parse()
                .map_err(|_| self.err("bad position"))?;
            self.ws();
            self.expect("]")?;
            return Ok(StepPredicate::Position(n));
        }
        // relative path comparison: path op "literal"
        let mut rel = Vec::new();
        loop {
            let axis = if self.b[self.pos..].starts_with(b"//") {
                self.pos += 2;
                Axis::Descendant
            } else if self.peek() == Some(b'/') {
                self.pos += 1;
                Axis::Child
            } else if rel.is_empty() {
                Axis::Child // first step may omit leading slash: [title = "x"]
            } else {
                break;
            };
            if self.peek() == Some(b'@') {
                self.pos += 1;
                rel.push(Step { axis, test: NodeTest::Attr(self.name()?), predicate: None });
            } else {
                let n = self.name()?;
                let test = if n == "text" && self.b[self.pos..].starts_with(b"()") {
                    self.pos += 2;
                    NodeTest::Text
                } else {
                    NodeTest::Name(n)
                };
                rel.push(Step { axis, test, predicate: None });
            }
            if self.peek() != Some(b'/') {
                break;
            }
        }
        self.ws();
        let op = self.cmp_op()?;
        let value = match self.peek() {
            Some(b'"') | Some(b'\'') => self.string_lit()?,
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'.') {
                    self.pos += 1;
                }
                let v = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
                self.ws();
                v
            }
            _ => return Err(self.err("expected literal in predicate")),
        };
        self.expect("]")?;
        Ok(StepPredicate::Cmp { path: rel, op, value })
    }

    pub(crate) fn cmp_op(&mut self) -> PResult<CmpOp> {
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.try_tok(tok) {
                return Ok(op);
            }
        }
        Err(self.err("expected comparison operator"))
    }

    // ---- FLWOR -------------------------------------------------------

    fn flwor(&mut self) -> PResult<Flwor> {
        let mut f = Flwor::default();
        loop {
            if self.kw("for") {
                loop {
                    let var = self.var()?;
                    if !self.kw("in") {
                        return Err(self.err("expected 'in'"));
                    }
                    let source = self.expr_single()?;
                    f.fors.push(ForBind { var, source });
                    if !self.try_tok(",") {
                        break;
                    }
                    // allow optional `for` repetition after comma
                    self.kw("for");
                }
            } else if self.kw("let") {
                loop {
                    let var = self.var()?;
                    self.expect(":=")?;
                    let e = self.expr_single()?;
                    f.lets.push((var, e));
                    if !self.try_tok(",") {
                        break;
                    }
                    self.kw("let");
                }
            } else {
                break;
            }
        }
        if f.fors.is_empty() && f.lets.is_empty() {
            return Err(self.err("expected 'for' or 'let'"));
        }
        if self.kw("where") {
            f.where_ = Some(self.bool_expr()?);
        }
        if self.kw("order") {
            if !self.kw("by") {
                return Err(self.err("expected 'by' after 'order'"));
            }
            loop {
                let expr = self.operand()?;
                let descending = if self.kw("descending") {
                    true
                } else {
                    self.kw("ascending");
                    false
                };
                f.order_by.push(OrderSpec { expr, descending });
                if !self.try_tok(",") {
                    break;
                }
            }
        }
        if !self.kw("return") {
            return Err(self.err("expected 'return'"));
        }
        f.ret = Some(self.expr_single()?);
        Ok(f)
    }

    fn bool_expr(&mut self) -> PResult<BoolExpr> {
        let mut acc = self.comparison()?;
        while self.kw("and") {
            let rhs = self.comparison()?;
            acc = BoolExpr::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn comparison(&mut self) -> PResult<BoolExpr> {
        let lhs = self.operand()?;
        let op = self.cmp_op()?;
        let rhs = self.operand()?;
        Ok(BoolExpr::Cmp { lhs, op, rhs })
    }

    // ---- direct element constructors ----------------------------------

    fn elem_constructor(&mut self) -> PResult<ElemCons> {
        self.expect_raw(b'<')?;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect_raw(b'>')?;
                    self.ws();
                    return Ok(ElemCons { name, attrs, children: Vec::new() });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let k = self.name()?;
                    self.ws();
                    self.expect_raw(b'=')?;
                    self.ws();
                    attrs.push((k, self.attr_value()?));
                }
                None => return Err(self.err("unexpected end in constructor tag")),
            }
        }
        // Content mode.
        let mut children = Vec::new();
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.b[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != name {
                            return Err(
                                self.err(format!("mismatched </{close}>, expected </{name}>"))
                            );
                        }
                        self.ws();
                        self.expect_raw(b'>')?;
                        self.ws();
                        return Ok(ElemCons { name, attrs, children });
                    }
                    children.push(Expr::Elem(Box::new(self.elem_constructor()?)));
                }
                Some(b'{') => {
                    self.pos += 1;
                    self.ws();
                    let mut exprs = vec![self.expr_single()?];
                    while self.try_tok(",") {
                        exprs.push(self.expr_single()?);
                    }
                    self.expect("}")?;
                    if exprs.len() == 1 {
                        children.push(exprs.pop().unwrap());
                    } else {
                        children.push(Expr::Seq(exprs));
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<' && c != b'{') {
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        children.push(Expr::Literal(trimmed.to_string()));
                    }
                }
                None => return Err(self.err(format!("unexpected end inside <{name}>"))),
            }
        }
    }

    /// Attribute value: `"literal"` or `"{expr}"` (optionally with
    /// surrounding literal text, which the paper's queries do not use).
    fn attr_value(&mut self) -> PResult<AttrValue> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        // embedded expression?
        let mut literal = String::new();
        let mut expr: Option<Expr> = None;
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.pos += 1;
                    self.ws();
                    break;
                }
                Some(b'{') => {
                    self.pos += 1;
                    self.ws();
                    let e = self.expr_single()?;
                    self.expect("}")?;
                    if expr.is_some() {
                        return Err(self.err("multiple embedded expressions in one attribute"));
                    }
                    expr = Some(e);
                }
                Some(c) => {
                    literal.push(c as char);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        match expr {
            Some(e) if literal.trim().is_empty() => Ok(AttrValue::Expr(e)),
            Some(_) => Err(self.err("mixed literal/expression attribute values unsupported")),
            None => Ok(AttrValue::Literal(literal)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_path_query() {
        let e = parse_query(r#"doc("bib.xml")/bib/book"#).unwrap();
        match e {
            Expr::Path(p) => {
                assert_eq!(p.source, PathSource::Doc("bib.xml".into()));
                assert_eq!(p.steps.len(), 2);
                assert_eq!(p.steps[1].test, NodeTest::Name("book".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_descendant_axis_and_tests() {
        let e = parse_query(r#"doc("site.xml")//person/@id"#).unwrap();
        let Expr::Path(p) = e else { panic!() };
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[1].test, NodeTest::Attr("id".into()));
        let e2 = parse_query(r#"doc("a.xml")/x/text()"#).unwrap();
        let Expr::Path(p2) = e2 else { panic!() };
        assert_eq!(p2.steps[1].test, NodeTest::Text);
    }

    #[test]
    fn parse_flat_flwor() {
        let q = r#"for $p in doc("site.xml")/people/person/profile return $p"#;
        let Expr::Flwor(f) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(f.fors.len(), 1);
        assert_eq!(f.fors[0].var, "p");
        assert_eq!(f.ret, Some(Expr::Var("p".into())));
    }

    #[test]
    fn parse_multi_var_for_with_where() {
        let q = r#"for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
                   where $b/title = $e/b-title return $b"#;
        let Expr::Flwor(f) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(f.fors.len(), 2);
        let w = f.where_.unwrap();
        assert_eq!(w.conjuncts().len(), 1);
    }

    #[test]
    fn parse_constructor_with_embedded_exprs() {
        let q = r#"<result>{ for $b in doc("bib.xml")/bib/book return <entry>{$b/title}</entry> }</result>"#;
        let Expr::Elem(c) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(c.name, "result");
        assert_eq!(c.children.len(), 1);
        assert!(matches!(c.children[0], Expr::Flwor(_)));
    }

    #[test]
    fn parse_attr_expr_and_literal() {
        let q = r#"<yGroup Y="{$y}" kind="group"/>"#;
        let Expr::Elem(c) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(c.attrs.len(), 2);
        assert_eq!(c.attrs[0].1, AttrValue::Expr(Expr::Var("y".into())));
        assert_eq!(c.attrs[1].1, AttrValue::Literal("group".into()));
    }

    #[test]
    fn parse_running_example_figure_1_2() {
        // The paper's running-example view (Figure 1.2(a)), canonical braces.
        let q = r#"
        <result>{
          for $y in distinct-values(doc("bib.xml")/bib/book/@year)
          order by $y
          return
            <yGroup Y="{$y}">
              <books>{
                for $b in doc("bib.xml")/bib/book,
                    $e in doc("prices.xml")/prices/entry
                where $y = $b/@year and $b/title = $e/b-title
                return <entry>{$b/title}{$e/price}</entry>
              }</books>
            </yGroup>
        }</result>"#;
        let Expr::Elem(root) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(root.name, "result");
        let Expr::Flwor(outer) = &root.children[0] else { panic!() };
        assert!(matches!(outer.fors[0].source, Expr::DistinctValues(_)));
        assert_eq!(outer.order_by.len(), 1);
        let Some(Expr::Elem(ygroup)) = &outer.ret else { panic!() };
        assert_eq!(ygroup.name, "yGroup");
        let Expr::Elem(books) = &ygroup.children[0] else { panic!() };
        let Expr::Flwor(inner) = &books.children[0] else { panic!() };
        assert_eq!(inner.fors.len(), 2);
        assert_eq!(inner.where_.as_ref().unwrap().conjuncts().len(), 2);
        let Some(Expr::Elem(entry)) = &inner.ret else { panic!() };
        assert_eq!(entry.children.len(), 2);
    }

    #[test]
    fn parse_order_by_descending_and_lists() {
        let q = r#"for $c in doc("s.xml")/a/b order by $c/x descending, $c/y return $c"#;
        let Expr::Flwor(f) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(f.order_by.len(), 2);
        assert!(f.order_by[0].descending);
        assert!(!f.order_by[1].descending);
    }

    #[test]
    fn parse_let_clause() {
        let q = r#"let $t := doc("bib.xml")/bib/book return <r>{$t}</r>"#;
        let Expr::Flwor(f) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(f.lets.len(), 1);
        assert_eq!(f.lets[0].0, "t");
    }

    #[test]
    fn parse_path_predicates() {
        let q = r#"doc("bib.xml")/bib/book[title = "Data on the Web"]"#;
        let Expr::Path(p) = parse_query(q).unwrap() else { panic!() };
        let Some(StepPredicate::Cmp { path, op, value }) = &p.steps[1].predicate else { panic!() };
        assert_eq!(path.len(), 1);
        assert_eq!(*op, CmpOp::Eq);
        assert_eq!(value, "Data on the Web");
        // positional
        let q2 = r#"document("bib.xml")/bib/book[2]"#;
        let Expr::Path(p2) = parse_query(q2).unwrap() else { panic!() };
        assert_eq!(p2.steps[1].predicate, Some(StepPredicate::Position(2)));
    }

    #[test]
    fn parse_aggregates_and_distinct() {
        let q = r#"count(doc("s.xml")//person)"#;
        assert!(matches!(parse_query(q).unwrap(), Expr::Agg { func: AggFunc::Count, .. }));
        let q2 = r#"distinct-values(doc("s.xml")//city)"#;
        assert!(matches!(parse_query(q2).unwrap(), Expr::DistinctValues(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("for $x in").is_err());
        assert!(parse_query(r#"<a>{$x}</b>"#).is_err());
        assert!(parse_query(r#"doc("x") extra"#).is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn uppercase_keywords_accepted() {
        let q = r#"FOR $p IN doc("s.xml")/people/person RETURN $p"#;
        assert!(matches!(parse_query(q).unwrap(), Expr::Flwor(_)));
    }

    #[test]
    fn comments_skipped() {
        let q = r#"(: the view :) for $p in doc("s.xml")/a (: inner :) return $p"#;
        assert!(parse_query(q).is_ok());
    }

    #[test]
    fn constructor_literal_text_content() {
        let q = r#"<greeting>hello world</greeting>"#;
        let Expr::Elem(c) = parse_query(q).unwrap() else { panic!() };
        assert_eq!(c.children, vec![Expr::Literal("hello world".into())]);
    }
}
