//! The XQuery update language of \[TIHW01\], as used for source updates
//! (Figure 1.3):
//!
//! ```text
//! for $v in document("doc.xml")/path [where <cond>]
//! update $v {
//!     insert <fragment…/> (before | after) $v        -- or: into $v
//!   | delete $v[/path]
//!   | replace $v/path[/text()] with "literal"
//! }
//! ```
//!
//! (The braces are optional, matching the paper's own examples.) The target
//! binding path may use positional predicates (`/bib/book[2]`,
//! Figure 1.3(a)).

use crate::ast::*;
use crate::parser::{QueryParseError, P};

/// The action of one update statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateAction {
    /// `insert <frag> after $v` — raw fragment XML, resolved by the caller.
    InsertAfter { fragment_xml: String },
    /// `insert <frag> before $v`.
    InsertBefore { fragment_xml: String },
    /// `insert <frag> into $v` (append as last child).
    InsertInto { fragment_xml: String },
    /// `delete $v[/path]` — relative path from the bound target (usually
    /// empty: delete the target itself).
    Delete { rel_path: Vec<Step> },
    /// `replace $v/path with "value"` — replace the text content of the node
    /// reached by `rel_path` (a trailing `text()` step is accepted and
    /// ignored; replacement is by string value).
    ReplaceWith { rel_path: Vec<Step>, new_value: String },
}

/// One parsed update statement: bind `$var` to `doc` nodes via `path`
/// (filtered by `where_`), then perform `action` on each binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateStmt {
    pub var: String,
    pub doc: String,
    pub path: Vec<Step>,
    pub where_: Option<BoolExpr>,
    pub action: UpdateAction,
}

/// Parse a sequence of update statements (separated by whitespace or `;`).
pub fn parse_updates(input: &str) -> Result<Vec<UpdateStmt>, QueryParseError> {
    let mut p = P { b: input.as_bytes(), pos: 0 };
    let mut out = Vec::new();
    p.ws();
    while p.pos < p.b.len() {
        out.push(parse_one(&mut p)?);
        p.ws();
        while p.peek() == Some(b';') {
            p.pos += 1;
            p.ws();
        }
    }
    Ok(out)
}

fn parse_one(p: &mut P) -> Result<UpdateStmt, QueryParseError> {
    if !p.kw("for") {
        return Err(p.err("expected 'for' at start of update statement"));
    }
    let var = p.var()?;
    if !p.kw("in") {
        return Err(p.err("expected 'in'"));
    }
    // document("…")/path
    let fname = p.name()?;
    p.ws();
    if !matches!(fname.to_ascii_lowercase().as_str(), "doc" | "document") {
        return Err(p.err("expected doc(...) or document(...)"));
    }
    p.expect("(")?;
    let doc = match p.peek() {
        Some(b'"') | Some(b'\'') => {
            // reuse string parsing by delegating through expr machinery:
            let q = p.peek().unwrap();
            p.pos += 1;
            let start = p.pos;
            while p.peek().is_some_and(|c| c != q) {
                p.pos += 1;
            }
            let s = String::from_utf8_lossy(&p.b[start..p.pos]).into_owned();
            p.pos += 1;
            p.ws();
            s
        }
        _ => return Err(p.err("expected document name string")),
    };
    p.expect(")")?;
    let path = p.steps()?;
    let where_ = if p.kw("where") { Some(parse_where(p)?) } else { None };
    if !p.kw("update") {
        return Err(p.err("expected 'update'"));
    }
    let target = p.var()?;
    if target != var {
        return Err(p.err(format!("update target ${target} does not match bound ${var}")));
    }
    // Optional braces around the action.
    let braced = p.peek() == Some(b'{');
    if braced {
        p.expect("{")?;
    }
    let action = parse_action(p, &var)?;
    if braced {
        p.expect("}")?;
    }
    Ok(UpdateStmt { var, doc, path, where_, action })
}

fn parse_where(p: &mut P) -> Result<BoolExpr, QueryParseError> {
    let mut acc = parse_cmp(p)?;
    while p.kw("and") {
        let rhs = parse_cmp(p)?;
        acc = BoolExpr::And(Box::new(acc), Box::new(rhs));
    }
    Ok(acc)
}

fn parse_cmp(p: &mut P) -> Result<BoolExpr, QueryParseError> {
    let lhs = p.operand()?;
    let op = p.cmp_op()?;
    let rhs = p.operand()?;
    Ok(BoolExpr::Cmp { lhs, op, rhs })
}

fn parse_action(p: &mut P, var: &str) -> Result<UpdateAction, QueryParseError> {
    if p.kw("insert") {
        let fragment_xml = raw_fragment(p)?;
        if p.kw("after") {
            expect_target(p, var)?;
            Ok(UpdateAction::InsertAfter { fragment_xml })
        } else if p.kw("before") {
            expect_target(p, var)?;
            Ok(UpdateAction::InsertBefore { fragment_xml })
        } else if p.kw("into") {
            expect_target(p, var)?;
            Ok(UpdateAction::InsertInto { fragment_xml })
        } else {
            Err(p.err("expected 'after', 'before' or 'into'"))
        }
    } else if p.kw("delete") {
        let (tv, rel_path) = target_path(p)?;
        if tv != var {
            return Err(p.err(format!("delete target ${tv} does not match ${var}")));
        }
        Ok(UpdateAction::Delete { rel_path })
    } else if p.kw("replace") {
        let (tv, mut rel_path) = target_path(p)?;
        if tv != var {
            return Err(p.err(format!("replace target ${tv} does not match ${var}")));
        }
        // A trailing text() step addresses the text content; strip it.
        if matches!(rel_path.last(), Some(Step { test: NodeTest::Text, .. })) {
            rel_path.pop();
        }
        if !p.kw("with") {
            return Err(p.err("expected 'with'"));
        }
        let new_value = match p.peek() {
            Some(q @ (b'"' | b'\'')) => {
                p.pos += 1;
                let start = p.pos;
                while p.peek().is_some_and(|c| c != q) {
                    p.pos += 1;
                }
                let s = String::from_utf8_lossy(&p.b[start..p.pos]).into_owned();
                p.pos += 1;
                p.ws();
                s
            }
            Some(c) if c.is_ascii_digit() => {
                let start = p.pos;
                while p.peek().is_some_and(|c| c.is_ascii_digit() || c == b'.') {
                    p.pos += 1;
                }
                let s = String::from_utf8_lossy(&p.b[start..p.pos]).into_owned();
                p.ws();
                s
            }
            _ => return Err(p.err("expected replacement literal")),
        };
        Ok(UpdateAction::ReplaceWith { rel_path, new_value })
    } else {
        Err(p.err("expected 'insert', 'delete' or 'replace'"))
    }
}

fn expect_target(p: &mut P, var: &str) -> Result<(), QueryParseError> {
    let v = p.var()?;
    if v != var {
        Err(p.err(format!("position target ${v} does not match ${var}")))
    } else {
        Ok(())
    }
}

fn target_path(p: &mut P) -> Result<(String, Vec<Step>), QueryParseError> {
    let v = p.var()?;
    // `p.var()` eats trailing whitespace; a relative path must be adjacent,
    // but accepting `$v /path` is harmless.
    let steps = p.steps()?;
    Ok((v, steps))
}

/// Scan a raw XML fragment: from `<` to the matching close of the first
/// element, honoring nesting and self-closing tags. The fragment is kept as
/// text; `xmlstore::parse_document` materializes it later.
fn raw_fragment(p: &mut P) -> Result<String, QueryParseError> {
    if p.peek() != Some(b'<') {
        return Err(p.err("expected XML fragment after 'insert'"));
    }
    let start = p.pos;
    let mut depth = 0usize;
    loop {
        match p.peek() {
            None => return Err(p.err("unterminated XML fragment")),
            Some(b'<') => {
                if p.b[p.pos..].starts_with(b"</") {
                    // close tag
                    while p.peek().is_some_and(|c| c != b'>') {
                        p.pos += 1;
                    }
                    p.pos += 1; // consume '>'
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    // open or self-closing tag
                    let mut self_closing = false;
                    while let Some(c) = p.peek() {
                        if c == b'>' {
                            break;
                        }
                        if c == b'/' && p.b.get(p.pos + 1) == Some(&b'>') {
                            self_closing = true;
                        }
                        // skip quoted attr values to ignore '>' inside them
                        if c == b'"' || c == b'\'' {
                            let q = c;
                            p.pos += 1;
                            while p.peek().is_some_and(|x| x != q) {
                                p.pos += 1;
                            }
                        }
                        p.pos += 1;
                    }
                    p.pos += 1; // consume '>'
                    if !self_closing {
                        depth += 1;
                    }
                    if depth == 0 {
                        break; // single self-closing element
                    }
                }
            }
            Some(_) => p.pos += 1,
        }
    }
    let xml = String::from_utf8_lossy(&p.b[start..p.pos]).into_owned();
    p.ws();
    Ok(xml)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure_1_3a_insert_after() {
        let u = r#"for $book in document("bib.xml")/bib/book[2]
            update $book
            insert <book year="1994"><title>Advanced programming in the Unix environment</title><author><last>Stevens</last><first>W.</first></author></book> after $book"#;
        let stmts = parse_updates(u).unwrap();
        assert_eq!(stmts.len(), 1);
        let s = &stmts[0];
        assert_eq!(s.doc, "bib.xml");
        assert_eq!(s.path[1].predicate, Some(StepPredicate::Position(2)));
        let UpdateAction::InsertAfter { fragment_xml } = &s.action else { panic!() };
        assert!(fragment_xml.starts_with("<book year=\"1994\">"));
        assert!(fragment_xml.ends_with("</book>"));
    }

    #[test]
    fn parse_figure_1_3b_delete() {
        let u = r#"for $book in document("bib.xml")/bib/book
            where $book/title = "Data on the Web"
            update $book
            delete $book"#;
        let stmts = parse_updates(u).unwrap();
        let s = &stmts[0];
        assert!(s.where_.is_some());
        assert_eq!(s.action, UpdateAction::Delete { rel_path: vec![] });
    }

    #[test]
    fn parse_figure_1_3c_replace() {
        let u = r#"for $entry in document("prices.xml")/prices/entry
            where $entry/b-title = "TCP/IP Illustrated"
            update $entry
            replace $entry/price/text() with "70""#;
        let stmts = parse_updates(u).unwrap();
        let UpdateAction::ReplaceWith { rel_path, new_value } = &stmts[0].action else { panic!() };
        assert_eq!(rel_path.len(), 1, "text() step stripped");
        assert_eq!(rel_path[0].test, NodeTest::Name("price".into()));
        assert_eq!(new_value, "70");
    }

    #[test]
    fn parse_batch_of_heterogeneous_updates() {
        let u = r#"
        for $b in doc("bib.xml")/bib/book[1] update $b insert <note>x</note> into $b ;
        for $b in doc("bib.xml")/bib/book where $b/@year = "2000" update $b delete $b ;
        for $e in doc("prices.xml")/prices/entry[1] update $e replace $e/price with "10"
        "#;
        let stmts = parse_updates(u).unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0].action, UpdateAction::InsertInto { .. }));
        assert!(matches!(stmts[1].action, UpdateAction::Delete { .. }));
        assert!(matches!(stmts[2].action, UpdateAction::ReplaceWith { .. }));
    }

    #[test]
    fn self_closing_fragment() {
        let u = r#"for $b in doc("bib.xml")/bib/book[1] update $b insert <flag set="1"/> into $b"#;
        let stmts = parse_updates(u).unwrap();
        let UpdateAction::InsertInto { fragment_xml } = &stmts[0].action else { panic!() };
        assert_eq!(fragment_xml, r#"<flag set="1"/>"#);
    }

    #[test]
    fn nested_fragment_with_gt_in_attr() {
        let u = r#"for $b in doc("b.xml")/r update $b insert <a t="x>y"><c/></a> into $b"#;
        let stmts = parse_updates(u).unwrap();
        let UpdateAction::InsertInto { fragment_xml } = &stmts[0].action else { panic!() };
        assert_eq!(fragment_xml, r#"<a t="x>y"><c/></a>"#);
    }

    #[test]
    fn errors() {
        assert!(parse_updates("for $b in doc(\"x\")/r update $c delete $c").is_err());
        assert!(parse_updates("for $b in doc(\"x\")/r update $b explode $b").is_err());
        assert!(parse_updates("update $b delete $b").is_err());
    }

    #[test]
    fn braced_action_accepted() {
        let u = r#"for $b in doc("x.xml")/r update $b { delete $b }"#;
        assert!(parse_updates(u).is_ok());
    }
}
