//! [`wire`] codec impls for the typed update API and the expression AST it
//! embeds — an encoded [`UpdateBatch`] is **the WAL record payload**: the
//! durable journal stores exactly the ordered op sequence the maintenance
//! stack applies, so recovery replays through the same `apply_batch` path
//! as live ingestion.
//!
//! Encodings (enum tag bytes noted per type):
//!
//! * [`Axis`] — `0` Child, `1` Descendant;
//! * [`NodeTest`] — `0` Name, `1` Attr, `2` Text, `3` Wildcard;
//! * [`StepPredicate`] — `0` Cmp, `1` Position;
//! * [`PathSource`] — `0` Doc, `1` Var;
//! * [`CmpOp`] — `0`–`5` in declaration order;
//! * [`AggFunc`] — `0`–`4` in declaration order;
//! * [`BoolExpr`] — `0` Cmp, `1` And;
//! * [`AttrValue`] — `0` Literal, `1` Expr;
//! * [`Expr`] — `0` Path, `1` Var, `2` DistinctValues, `3` Agg,
//!   `4` Flwor, `5` Elem, `6` Seq, `7` Literal, `8` Number;
//! * [`InsertPosition`] — `0` Before, `1` After, `2` Into;
//! * [`OpAction`] — `0` Insert, `1` Delete, `2` ReplaceText;
//! * [`UpdateOp`] — var, doc, path, optional filter, action;
//! * [`UpdateBatch`] — op sequence in application order.
//!
//! The full [`Expr`] grammar is covered (not just the comparison subset
//! update filters use today), so any AST a parsed statement can carry
//! round-trips losslessly.

use crate::ast::{
    AggFunc, AttrValue, Axis, BoolExpr, CmpOp, ElemCons, Expr, Flwor, ForBind, NodeTest, OrderSpec,
    PathExpr, PathSource, Step, StepPredicate,
};
use crate::ops::{InsertPosition, OpAction, UpdateBatch, UpdateOp};
use wire::{put_slice, Decode, Encode, Reader, WireError};

impl Encode for Axis {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Axis::Child => 0,
            Axis::Descendant => 1,
        });
    }
}

impl Decode for Axis {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Axis::Child),
            1 => Ok(Axis::Descendant),
            tag => Err(WireError::Tag { type_name: "Axis", tag }),
        }
    }
}

impl Encode for NodeTest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NodeTest::Name(n) => {
                out.push(0);
                n.encode(out);
            }
            NodeTest::Attr(n) => {
                out.push(1);
                n.encode(out);
            }
            NodeTest::Text => out.push(2),
            NodeTest::Wildcard => out.push(3),
        }
    }
}

impl Decode for NodeTest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(NodeTest::Name(String::decode(r)?)),
            1 => Ok(NodeTest::Attr(String::decode(r)?)),
            2 => Ok(NodeTest::Text),
            3 => Ok(NodeTest::Wildcard),
            tag => Err(WireError::Tag { type_name: "NodeTest", tag }),
        }
    }
}

impl Encode for StepPredicate {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StepPredicate::Cmp { path, op, value } => {
                out.push(0);
                put_slice(out, path);
                op.encode(out);
                value.encode(out);
            }
            StepPredicate::Position(p) => {
                out.push(1);
                p.encode(out);
            }
        }
    }
}

impl Decode for StepPredicate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(StepPredicate::Cmp {
                path: Vec::<Step>::decode(r)?,
                op: CmpOp::decode(r)?,
                value: String::decode(r)?,
            }),
            1 => Ok(StepPredicate::Position(usize::decode(r)?)),
            tag => Err(WireError::Tag { type_name: "StepPredicate", tag }),
        }
    }
}

impl Encode for Step {
    fn encode(&self, out: &mut Vec<u8>) {
        self.axis.encode(out);
        self.test.encode(out);
        self.predicate.encode(out);
    }
}

impl Decode for Step {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Step {
            axis: Axis::decode(r)?,
            test: NodeTest::decode(r)?,
            predicate: Option::<StepPredicate>::decode(r)?,
        })
    }
}

impl Encode for PathSource {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PathSource::Doc(d) => {
                out.push(0);
                d.encode(out);
            }
            PathSource::Var(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl Decode for PathSource {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(PathSource::Doc(String::decode(r)?)),
            1 => Ok(PathSource::Var(String::decode(r)?)),
            tag => Err(WireError::Tag { type_name: "PathSource", tag }),
        }
    }
}

impl Encode for PathExpr {
    fn encode(&self, out: &mut Vec<u8>) {
        self.source.encode(out);
        put_slice(out, &self.steps);
    }
}

impl Decode for PathExpr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PathExpr { source: PathSource::decode(r)?, steps: Vec::<Step>::decode(r)? })
    }
}

impl Encode for CmpOp {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
}

impl Decode for CmpOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            tag => return Err(WireError::Tag { type_name: "CmpOp", tag }),
        })
    }
}

impl Encode for AggFunc {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Avg => 2,
            AggFunc::Min => 3,
            AggFunc::Max => 4,
        });
    }
}

impl Decode for AggFunc {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => AggFunc::Count,
            1 => AggFunc::Sum,
            2 => AggFunc::Avg,
            3 => AggFunc::Min,
            4 => AggFunc::Max,
            tag => return Err(WireError::Tag { type_name: "AggFunc", tag }),
        })
    }
}

impl Encode for BoolExpr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BoolExpr::Cmp { lhs, op, rhs } => {
                out.push(0);
                lhs.encode(out);
                op.encode(out);
                rhs.encode(out);
            }
            BoolExpr::And(a, b) => {
                out.push(1);
                a.encode(out);
                b.encode(out);
            }
        }
    }
}

impl Decode for BoolExpr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(BoolExpr::Cmp {
                lhs: Expr::decode(r)?,
                op: CmpOp::decode(r)?,
                rhs: Expr::decode(r)?,
            }),
            1 => Ok(BoolExpr::And(Box::new(BoolExpr::decode(r)?), Box::new(BoolExpr::decode(r)?))),
            tag => Err(WireError::Tag { type_name: "BoolExpr", tag }),
        }
    }
}

impl Encode for OrderSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.expr.encode(out);
        self.descending.encode(out);
    }
}

impl Decode for OrderSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OrderSpec { expr: Expr::decode(r)?, descending: bool::decode(r)? })
    }
}

impl Encode for ForBind {
    fn encode(&self, out: &mut Vec<u8>) {
        self.var.encode(out);
        self.source.encode(out);
    }
}

impl Decode for ForBind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ForBind { var: String::decode(r)?, source: Expr::decode(r)? })
    }
}

impl Encode for Flwor {
    fn encode(&self, out: &mut Vec<u8>) {
        put_slice(out, &self.fors);
        put_slice(out, &self.lets);
        self.where_.encode(out);
        put_slice(out, &self.order_by);
        self.ret.encode(out);
    }
}

impl Decode for Flwor {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Flwor {
            fors: Vec::<ForBind>::decode(r)?,
            lets: Vec::<(String, Expr)>::decode(r)?,
            where_: Option::<BoolExpr>::decode(r)?,
            order_by: Vec::<OrderSpec>::decode(r)?,
            ret: Option::<Expr>::decode(r)?,
        })
    }
}

impl Encode for AttrValue {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AttrValue::Literal(s) => {
                out.push(0);
                s.encode(out);
            }
            AttrValue::Expr(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }
}

impl Decode for AttrValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(AttrValue::Literal(String::decode(r)?)),
            1 => Ok(AttrValue::Expr(Expr::decode(r)?)),
            tag => Err(WireError::Tag { type_name: "AttrValue", tag }),
        }
    }
}

impl Encode for ElemCons {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        put_slice(out, &self.attrs);
        put_slice(out, &self.children);
    }
}

impl Decode for ElemCons {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ElemCons {
            name: String::decode(r)?,
            attrs: Vec::<(String, AttrValue)>::decode(r)?,
            children: Vec::<Expr>::decode(r)?,
        })
    }
}

impl Encode for Expr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Path(p) => {
                out.push(0);
                p.encode(out);
            }
            Expr::Var(v) => {
                out.push(1);
                v.encode(out);
            }
            Expr::DistinctValues(e) => {
                out.push(2);
                e.encode(out);
            }
            Expr::Agg { func, arg } => {
                out.push(3);
                func.encode(out);
                arg.encode(out);
            }
            Expr::Flwor(f) => {
                out.push(4);
                f.encode(out);
            }
            Expr::Elem(c) => {
                out.push(5);
                c.encode(out);
            }
            Expr::Seq(es) => {
                out.push(6);
                put_slice(out, es);
            }
            Expr::Literal(s) => {
                out.push(7);
                s.encode(out);
            }
            Expr::Number(n) => {
                out.push(8);
                n.encode(out);
            }
        }
    }
}

impl Decode for Expr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Expr::Path(PathExpr::decode(r)?)),
            1 => Ok(Expr::Var(String::decode(r)?)),
            2 => Ok(Expr::DistinctValues(Box::new(Expr::decode(r)?))),
            3 => Ok(Expr::Agg { func: AggFunc::decode(r)?, arg: Box::new(Expr::decode(r)?) }),
            4 => Ok(Expr::Flwor(Box::new(Flwor::decode(r)?))),
            5 => Ok(Expr::Elem(Box::new(ElemCons::decode(r)?))),
            6 => Ok(Expr::Seq(Vec::<Expr>::decode(r)?)),
            7 => Ok(Expr::Literal(String::decode(r)?)),
            8 => Ok(Expr::Number(String::decode(r)?)),
            tag => Err(WireError::Tag { type_name: "Expr", tag }),
        }
    }
}

impl Encode for InsertPosition {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            InsertPosition::Before => 0,
            InsertPosition::After => 1,
            InsertPosition::Into => 2,
        });
    }
}

impl Decode for InsertPosition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => InsertPosition::Before,
            1 => InsertPosition::After,
            2 => InsertPosition::Into,
            tag => return Err(WireError::Tag { type_name: "InsertPosition", tag }),
        })
    }
}

impl Encode for OpAction {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OpAction::Insert { position, fragment_xml } => {
                out.push(0);
                position.encode(out);
                fragment_xml.encode(out);
            }
            OpAction::Delete { rel_path } => {
                out.push(1);
                put_slice(out, rel_path);
            }
            OpAction::ReplaceText { rel_path, new_value } => {
                out.push(2);
                put_slice(out, rel_path);
                new_value.encode(out);
            }
        }
    }
}

impl Decode for OpAction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(OpAction::Insert {
                position: InsertPosition::decode(r)?,
                fragment_xml: String::decode(r)?,
            }),
            1 => Ok(OpAction::Delete { rel_path: Vec::<Step>::decode(r)? }),
            2 => Ok(OpAction::ReplaceText {
                rel_path: Vec::<Step>::decode(r)?,
                new_value: String::decode(r)?,
            }),
            tag => Err(WireError::Tag { type_name: "OpAction", tag }),
        }
    }
}

impl Encode for UpdateOp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.var().encode(out);
        self.doc().encode(out);
        put_slice(out, self.path());
        match self.filter_expr() {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                f.encode(out);
            }
        }
        self.action().encode(out);
    }
}

impl Decode for UpdateOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let var = String::decode(r)?;
        let doc = String::decode(r)?;
        let path = Vec::<Step>::decode(r)?;
        let filter = Option::<BoolExpr>::decode(r)?;
        let action = OpAction::decode(r)?;
        Ok(UpdateOp::from_parts(var, doc, path, filter, action))
    }
}

impl Encode for UpdateBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        put_slice(out, self.ops());
    }
}

impl Decode for UpdateBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Vec::<UpdateOp>::decode(r)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(wire::from_slice::<T>(&wire::to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn builder_ops_roundtrip() {
        rt(UpdateOp::insert(
            "bib.xml",
            "/bib",
            InsertPosition::Into,
            "<book year=\"2001\"><title>New</title></book>",
        )
        .unwrap());
        rt(UpdateOp::delete("bib.xml", "/bib/book[2]").unwrap());
        rt(UpdateOp::replace_text("prices.xml", "/prices/entry", "price/text()", "9.99")
            .unwrap()
            .filter("b-title", CmpOp::Eq, "New")
            .unwrap());
    }

    #[test]
    fn parsed_batch_roundtrips_losslessly() {
        let batch = UpdateBatch::from_script(
            r#"for $u in doc("bib.xml")/bib update $u
               insert <book year="2001"><title>New</title></book> into $u ;
               for $b in document("bib.xml")//book
               where $b/@year = "1994" and $b/title = "X"
               update $b insert <note>n</note> after $b ;
               for $b in doc("bib.xml")/bib/book[2] update $b delete $b/title ;
               for $e in doc("prices.xml")/prices/entry where $e/b-title = "New"
               update $e replace $e/price/text() with "9.99""#,
        )
        .unwrap();
        let back: UpdateBatch = wire::from_slice(&wire::to_vec(&batch)).unwrap();
        assert_eq!(back, batch);
        // The decoded ops lower to the same parsed statements (the
        // resolver's input), not just structurally equal values.
        for (a, b) in batch.ops().iter().zip(back.ops()) {
            assert_eq!(a.to_stmt(), b.to_stmt());
        }
    }

    #[test]
    fn full_expr_grammar_roundtrips() {
        // A query exercising FLWOR, distinct-values, aggregates, element
        // construction with embedded attributes, sequences, and order-by.
        let q = r#"<result>{
            for $y in distinct-values(doc("bib.xml")/bib/book/@year)
            order by $y descending
            return <yGroup Y="{$y}">
                <n>{ count(
                    for $b in doc("bib.xml")/bib/book
                    where $y = $b/@year and $b/title != "X"
                    return $b
                ) }</n>
                {"lit"}
            </yGroup>
        }</result>"#;
        let expr = crate::parser::parse_query(q).unwrap();
        rt(expr);
    }

    #[test]
    fn empty_batch_roundtrips() {
        rt(UpdateBatch::new());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            wire::from_slice::<Expr>(&[99]).unwrap_err(),
            WireError::Tag { type_name: "Expr", tag: 99 }
        ));
        assert!(matches!(
            wire::from_slice::<OpAction>(&[7]).unwrap_err(),
            WireError::Tag { type_name: "OpAction", .. }
        ));
    }
}
