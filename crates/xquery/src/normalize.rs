//! Source-level normalization (§2.3.1).
//!
//! * **Rule 1** — `let` elimination: the expression binding a let-variable is
//!   substituted for every occurrence of the variable. (Rainbow shares the
//!   computation via a DAG; we share via plan-level common-subexpression
//!   reuse in the translator.)
//! * **Rule 2** — multi-variable `for` clauses are split so each clause binds
//!   one variable. Our AST keeps them in one `Vec`, which is the split form.
//! * **Rule 3** — XPath comparison predicates are hoisted into `where`
//!   clauses of the enclosing FLWOR block, so every navigation is
//!   predicate-free and has a variable or document entry point. A predicate
//!   on a `for` binding source becomes a conjunct on that binding's variable;
//!   a standalone predicated path becomes a fresh single-variable FLWOR.

use crate::ast::*;

/// Normalize a query expression. Idempotent.
pub fn normalize(e: Expr) -> Expr {
    norm_expr(e, &[])
}

/// Substitution environment for let-inlining.
type Env<'a> = &'a [(String, Expr)];

fn lookup(env: Env, var: &str) -> Option<Expr> {
    env.iter().rev().find(|(v, _)| v == var).map(|(_, e)| e.clone())
}

fn norm_expr(e: Expr, env: Env) -> Expr {
    match e {
        Expr::Flwor(f) => norm_flwor(*f, env),
        Expr::Var(v) => lookup(env, &v).unwrap_or(Expr::Var(v)),
        Expr::Path(p) => norm_path(p, env),
        Expr::DistinctValues(inner) => Expr::DistinctValues(Box::new(norm_expr(*inner, env))),
        Expr::Agg { func, arg } => Expr::Agg { func, arg: Box::new(norm_expr(*arg, env)) },
        Expr::Seq(es) => Expr::Seq(es.into_iter().map(|x| norm_expr(x, env)).collect()),
        Expr::Elem(c) => {
            let ElemCons { name, attrs, children } = *c;
            Expr::Elem(Box::new(ElemCons {
                name,
                attrs: attrs
                    .into_iter()
                    .map(|(k, v)| {
                        let v = match v {
                            AttrValue::Expr(e) => AttrValue::Expr(norm_expr(e, env)),
                            lit => lit,
                        };
                        (k, v)
                    })
                    .collect(),
                children: children.into_iter().map(|x| norm_expr(x, env)).collect(),
            }))
        }
        lit @ (Expr::Literal(_) | Expr::Number(_)) => lit,
    }
}

/// Rewrite a path: substitute a let-bound variable entry point, and hoist
/// predicates (Rule 3) by wrapping into a fresh FLWOR when needed.
fn norm_path(p: PathExpr, env: Env) -> Expr {
    // Let-substitution on the entry point: $t/rest where $t := <expr>
    // becomes a path from <expr> when that is itself a path, or stays a
    // nested FLWOR navigation otherwise.
    let p = match &p.source {
        PathSource::Var(v) => match lookup(env, v) {
            Some(Expr::Path(base)) => {
                let mut steps = base.steps.clone();
                steps.extend(p.steps.clone());
                PathExpr { source: base.source, steps }
            }
            Some(Expr::Var(v2)) => PathExpr { source: PathSource::Var(v2), steps: p.steps },
            _ => p,
        },
        PathSource::Doc(_) => p,
    };
    if !p.steps.iter().any(|s| matches!(s.predicate, Some(StepPredicate::Cmp { .. }))) {
        return Expr::Path(p);
    }
    // Hoist comparison predicates: split at the last predicated step:
    //   E1[pred]/rest  ⇒  for $fresh in E1 where $fresh/predpath op lit
    //                     return $fresh/rest
    // Applied innermost-first by recursing on the prefix.
    let idx = p
        .steps
        .iter()
        .rposition(|s| matches!(s.predicate, Some(StepPredicate::Cmp { .. })))
        .unwrap();
    let mut prefix_steps = p.steps[..=idx].to_vec();
    let rest = p.steps[idx + 1..].to_vec();
    let Some(StepPredicate::Cmp { path, op, value }) = prefix_steps[idx].predicate.take() else {
        unreachable!()
    };
    let fresh = fresh_var(&p);
    let binding_src = norm_path(PathExpr { source: p.source.clone(), steps: prefix_steps }, env);
    let where_ = BoolExpr::Cmp {
        lhs: Expr::Path(PathExpr::new(PathSource::Var(fresh.clone()), path)),
        op,
        rhs: Expr::Literal(value),
    };
    let ret = if rest.is_empty() {
        Expr::Var(fresh.clone())
    } else {
        Expr::Path(PathExpr::new(PathSource::Var(fresh.clone()), rest))
    };
    Expr::Flwor(Box::new(Flwor {
        fors: vec![ForBind { var: fresh, source: binding_src }],
        lets: Vec::new(),
        where_: Some(where_),
        order_by: Vec::new(),
        ret: Some(ret),
    }))
}

fn fresh_var(p: &PathExpr) -> String {
    // Deterministic fresh name derived from the path's last named step.
    let base = p
        .steps
        .iter()
        .rev()
        .find_map(|s| match &s.test {
            NodeTest::Name(n) => Some(n.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "x".to_string());
    format!("__{base}")
}

fn norm_flwor(mut f: Flwor, env: Env) -> Expr {
    // Rule 1: inline lets into a growing environment.
    let mut env2: Vec<(String, Expr)> = env.to_vec();
    for (v, e) in std::mem::take(&mut f.lets) {
        let e = norm_expr(e, &env2);
        env2.push((v, e));
    }
    // Rule 3 on binding sources; predicated binding sources become where
    // conjuncts on the bound variable rather than nested FLWORs.
    let mut extra_preds: Vec<BoolExpr> = Vec::new();
    let fors = std::mem::take(&mut f.fors)
        .into_iter()
        .map(|b| {
            let source = norm_expr(b.source, &env2);
            let source = match source {
                Expr::Flwor(inner) if is_predicate_hoist(&inner, &b.var) => {
                    // for $v in (for $f in E where P($f) return $f)
                    //   ⇒ for $v in E where P($v)
                    let Flwor { fors: inner_fors, where_, ret, .. } = *inner;
                    let inner_bind = inner_fors.into_iter().next().unwrap();
                    if let Some(w) = where_ {
                        extra_preds.push(rename_bool(w, &inner_bind.var, &b.var));
                    }
                    match ret {
                        Some(Expr::Var(_)) => inner_bind.source,
                        Some(Expr::Path(p)) => {
                            // return $f/rest: splice rest onto the binding path
                            match inner_bind.source {
                                Expr::Path(mut base) => {
                                    base.steps.extend(p.steps);
                                    Expr::Path(base)
                                }
                                other => other,
                            }
                        }
                        _ => inner_bind.source,
                    }
                }
                s => s,
            };
            ForBind { var: b.var, source }
        })
        .collect();
    f.fors = fors;
    let mut where_ = f.where_.map(|w| norm_bool(w, &env2));
    for p in extra_preds {
        where_ = Some(match where_ {
            Some(w) => BoolExpr::And(Box::new(w), Box::new(p)),
            None => p,
        });
    }
    f.where_ = where_;
    f.order_by = f
        .order_by
        .into_iter()
        .map(|o| OrderSpec { expr: norm_expr(o.expr, &env2), descending: o.descending })
        .collect();
    f.ret = f.ret.map(|r| norm_expr(r, &env2));
    // A FLWOR with no for-bindings left (pure lets) reduces to its return.
    if f.fors.is_empty() {
        return f.ret.expect("normalized FLWOR must have a return");
    }
    Expr::Flwor(Box::new(f))
}

/// Recognize the shape produced by predicate hoisting in [`norm_path`]:
/// a single-binding FLWOR whose return is the bound variable or a path on it.
fn is_predicate_hoist(f: &Flwor, _outer_var: &str) -> bool {
    f.fors.len() == 1
        && f.lets.is_empty()
        && f.order_by.is_empty()
        && f.fors[0].var.starts_with("__")
        && matches!(
            &f.ret,
            Some(Expr::Var(v)) if *v == f.fors[0].var
        )
        || (f.fors.len() == 1
            && f.lets.is_empty()
            && f.order_by.is_empty()
            && f.fors[0].var.starts_with("__")
            && matches!(
                &f.ret,
                Some(Expr::Path(p)) if p.source == PathSource::Var(f.fors[0].var.clone())
            ))
}

fn norm_bool(b: BoolExpr, env: Env) -> BoolExpr {
    match b {
        BoolExpr::Cmp { lhs, op, rhs } => {
            BoolExpr::Cmp { lhs: norm_expr(lhs, env), op, rhs: norm_expr(rhs, env) }
        }
        BoolExpr::And(a, c) => {
            BoolExpr::And(Box::new(norm_bool(*a, env)), Box::new(norm_bool(*c, env)))
        }
    }
}

fn rename_bool(b: BoolExpr, from: &str, to: &str) -> BoolExpr {
    match b {
        BoolExpr::Cmp { lhs, op, rhs } => {
            BoolExpr::Cmp { lhs: rename_expr(lhs, from, to), op, rhs: rename_expr(rhs, from, to) }
        }
        BoolExpr::And(a, c) => {
            BoolExpr::And(Box::new(rename_bool(*a, from, to)), Box::new(rename_bool(*c, from, to)))
        }
    }
}

fn rename_expr(e: Expr, from: &str, to: &str) -> Expr {
    match e {
        Expr::Var(v) if v == from => Expr::Var(to.to_string()),
        Expr::Path(mut p) => {
            if p.source == PathSource::Var(from.to_string()) {
                p.source = PathSource::Var(to.to_string());
            }
            Expr::Path(p)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn rule1_let_inlining() {
        let q = r#"let $t := doc("bib.xml")/bib/book return <r>{$t}</r>"#;
        let n = normalize(parse_query(q).unwrap());
        // The let disappears; $t is substituted in the return.
        let Expr::Elem(c) = n else { panic!("{n:?}") };
        assert!(matches!(&c.children[0], Expr::Path(p) if p.steps.len() == 2));
    }

    #[test]
    fn rule1_let_path_extension() {
        let q = r#"let $t := doc("bib.xml")/bib for $b in $t/book return $b"#;
        let n = normalize(parse_query(q).unwrap());
        let Expr::Flwor(f) = n else { panic!("{n:?}") };
        let Expr::Path(p) = &f.fors[0].source else { panic!() };
        assert_eq!(p.source, PathSource::Doc("bib.xml".into()));
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn rule3_predicate_hoisted_to_where() {
        let q = r#"for $b in doc("bib.xml")/bib/book[title = "Data on the Web"] return $b"#;
        let n = normalize(parse_query(q).unwrap());
        let Expr::Flwor(f) = n else { panic!("{n:?}") };
        // Binding source is now predicate-free…
        let Expr::Path(p) = &f.fors[0].source else { panic!() };
        assert!(p.steps.iter().all(|s| s.predicate.is_none()));
        // …and the predicate became a where conjunct on $b.
        let w = f.where_.as_ref().unwrap();
        let BoolExpr::Cmp { lhs, op: CmpOp::Eq, rhs } = w else { panic!("{w:?}") };
        let (v, steps) = lhs.as_var_path().unwrap();
        assert_eq!(v, "b");
        assert_eq!(steps[0].test, NodeTest::Name("title".into()));
        assert_eq!(rhs, &Expr::Literal("Data on the Web".into()));
    }

    #[test]
    fn rule3_standalone_predicated_path_becomes_flwor() {
        let q = r#"doc("bib.xml")/bib/book[title = "X"]/author"#;
        let n = normalize(parse_query(q).unwrap());
        let Expr::Flwor(f) = n else { panic!("{n:?}") };
        assert!(f.fors[0].var.starts_with("__"));
        assert!(f.where_.is_some());
        let Some(Expr::Path(ret)) = &f.ret else { panic!() };
        assert_eq!(ret.steps[0].test, NodeTest::Name("author".into()));
    }

    #[test]
    fn rule3_merges_with_existing_where() {
        let q = r#"for $b in doc("bib.xml")/bib/book[title = "X"]
                   where $b/@year = "1994" return $b"#;
        let n = normalize(parse_query(q).unwrap());
        let Expr::Flwor(f) = n else { panic!() };
        assert_eq!(f.where_.as_ref().unwrap().conjuncts().len(), 2);
    }

    #[test]
    fn normalization_is_idempotent() {
        let q = r#"let $t := doc("bib.xml")/bib
                   for $b in $t/book[title = "X"]
                   order by $b/@year
                   return <r>{$b/title}</r>"#;
        let n1 = normalize(parse_query(q).unwrap());
        let n2 = normalize(n1.clone());
        assert_eq!(n1, n2);
    }

    #[test]
    fn positional_predicates_left_alone() {
        // Positional predicates only occur in update-target paths; they are
        // not hoisted (they are not ComparisonExpr predicates).
        let q = r#"doc("bib.xml")/bib/book[2]"#;
        let n = normalize(parse_query(q).unwrap());
        let Expr::Path(p) = n else { panic!() };
        assert_eq!(p.steps[1].predicate, Some(StepPredicate::Position(2)));
    }
}
