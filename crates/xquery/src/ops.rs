//! Typed source-update operations: the programmatic face of the update
//! language in [`crate::update`].
//!
//! Every entry point of the maintenance stack used to take a raw
//! update-script `&str` and re-parse it per call. [`UpdateOp`] and
//! [`UpdateBatch`] make the update stream a first-class value instead:
//! an op is a typed insert/delete/modify with a document, a target path,
//! and an optional filter, constructible either
//!
//! * **programmatically** via the builder constructors
//!   ([`UpdateOp::insert`], [`UpdateOp::delete`],
//!   [`UpdateOp::replace_text`], refined with [`UpdateOp::filter`]), or
//! * **from script text**, parsed exactly once by
//!   [`UpdateBatch::from_script`].
//!
//! Downstream, `vpa-core` resolves ops against the store and the `viewsrv`
//! catalog sessions queue, coalesce, and apply whole batches — no string
//! round-trips anywhere past this module.
//!
//! ```
//! use xquery_lang::{CmpOp, InsertPosition, UpdateBatch, UpdateOp};
//!
//! let batch = UpdateBatch::new()
//!     .with(
//!         UpdateOp::insert("bib.xml", "/bib", InsertPosition::Into,
//!                          "<book year=\"2001\"><title>New</title></book>")
//!             .unwrap(),
//!     )
//!     .with(
//!         UpdateOp::delete("bib.xml", "/bib/book")
//!             .unwrap()
//!             .filter("@year", CmpOp::Eq, "1994")
//!             .unwrap(),
//!     );
//! assert_eq!(batch.len(), 2);
//!
//! // The same batch, parsed once from script text:
//! let parsed = UpdateBatch::from_script(
//!     r#"for $r in doc("bib.xml")/bib update $r
//!        insert <book year="2001"><title>New</title></book> into $r ;
//!        for $b in doc("bib.xml")/bib/book where $b/@year = "1994"
//!        update $b delete $b"#,
//! )
//! .unwrap();
//! assert_eq!(parsed.len(), 2);
//! assert_eq!(parsed.ops()[1].kind(), xquery_lang::OpKind::Delete);
//! ```

use crate::ast::{BoolExpr, CmpOp, Expr, NodeTest, PathExpr, PathSource, Step};
use crate::parser::{QueryParseError, P};
use crate::update::{parse_updates, UpdateAction, UpdateStmt};

/// Where an inserted fragment lands relative to the target node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPosition {
    /// Preceding sibling of the target.
    Before,
    /// Following sibling of the target.
    After,
    /// Last child of the target.
    Into,
}

/// The kind of an [`UpdateOp`] (mirrors the paper's three update
/// primitives, Figure 1.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    Insert,
    Delete,
    Modify,
}

/// The action half of an [`UpdateOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpAction {
    /// Insert `fragment_xml` at `position` relative to each target.
    Insert { position: InsertPosition, fragment_xml: String },
    /// Delete the node(s) reached by `rel_path` from each target (empty:
    /// the target itself).
    Delete { rel_path: Vec<Step> },
    /// Replace the text content of the node(s) reached by `rel_path` from
    /// each target with `new_value`.
    ReplaceText { rel_path: Vec<Step>, new_value: String },
}

/// One typed source update: bind targets in `doc` via `path` (optionally
/// narrowed by `filter`), then perform [`OpAction`] on each binding.
///
/// An `UpdateOp` is exactly as expressive as one parsed update statement —
/// [`UpdateOp::from_stmt`] and [`UpdateOp::to_stmt`] convert losslessly —
/// but it can be constructed, inspected, and re-batched without any script
/// text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateOp {
    /// The bound variable name filters refer to (cosmetic for
    /// builder-made ops; preserved from the script for parsed ops).
    var: String,
    doc: String,
    path: Vec<Step>,
    filter: Option<BoolExpr>,
    action: OpAction,
}

impl UpdateOp {
    /// An insert of `fragment_xml` at `position` relative to every node
    /// matched by `target_path` (an absolute path like `/bib/book[2]`)
    /// inside `doc`.
    pub fn insert(
        doc: &str,
        target_path: &str,
        position: InsertPosition,
        fragment_xml: &str,
    ) -> Result<UpdateOp, QueryParseError> {
        Ok(UpdateOp {
            var: "u".to_string(),
            doc: doc.to_string(),
            path: parse_path(target_path)?,
            filter: None,
            action: OpAction::Insert { position, fragment_xml: fragment_xml.to_string() },
        })
    }

    /// A delete of every node matched by `target_path` inside `doc`.
    pub fn delete(doc: &str, target_path: &str) -> Result<UpdateOp, QueryParseError> {
        Ok(UpdateOp {
            var: "u".to_string(),
            doc: doc.to_string(),
            path: parse_path(target_path)?,
            filter: None,
            action: OpAction::Delete { rel_path: Vec::new() },
        })
    }

    /// A text replacement: for every node matched by `target_path` in
    /// `doc`, replace the text content of the node reached by `rel_path`
    /// (empty or `.` for the target itself; a trailing `text()` step is
    /// accepted and stripped, as in the script language) with `new_value`.
    pub fn replace_text(
        doc: &str,
        target_path: &str,
        rel_path: &str,
        new_value: &str,
    ) -> Result<UpdateOp, QueryParseError> {
        let mut rel =
            if rel_path.is_empty() || rel_path == "." { Vec::new() } else { parse_path(rel_path)? };
        if matches!(rel.last(), Some(Step { test: NodeTest::Text, .. })) {
            rel.pop();
        }
        Ok(UpdateOp {
            var: "u".to_string(),
            doc: doc.to_string(),
            path: parse_path(target_path)?,
            filter: None,
            action: OpAction::ReplaceText { rel_path: rel, new_value: new_value.to_string() },
        })
    }

    /// Narrow the target binding with a comparison on a path relative to
    /// the target (e.g. `filter("@year", CmpOp::Eq, "1994")` or
    /// `filter("title", CmpOp::Eq, "Data on the Web")`). Repeated calls
    /// conjoin, matching the script language's `where … and …`.
    pub fn filter(
        mut self,
        rel_path: &str,
        op: CmpOp,
        value: &str,
    ) -> Result<UpdateOp, QueryParseError> {
        let steps = parse_path(rel_path)?;
        let cmp = BoolExpr::Cmp {
            lhs: Expr::Path(PathExpr::new(PathSource::Var(self.var.clone()), steps)),
            op,
            rhs: Expr::Literal(value.to_string()),
        };
        self.filter = Some(match self.filter.take() {
            Some(prev) => BoolExpr::And(Box::new(prev), Box::new(cmp)),
            None => cmp,
        });
        Ok(self)
    }

    /// The document this op updates.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The bound variable name the filter refers to.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// The target binding path.
    pub fn path(&self) -> &[Step] {
        &self.path
    }

    /// The filter narrowing the target binding, if any.
    pub fn filter_expr(&self) -> Option<&BoolExpr> {
        self.filter.as_ref()
    }

    /// The action performed on each bound target.
    pub fn action(&self) -> &OpAction {
        &self.action
    }

    /// The update primitive kind.
    pub fn kind(&self) -> OpKind {
        match self.action {
            OpAction::Insert { .. } => OpKind::Insert,
            OpAction::Delete { .. } => OpKind::Delete,
            OpAction::ReplaceText { .. } => OpKind::Modify,
        }
    }

    /// Reassemble an op from decoded parts (wire codec only).
    pub(crate) fn from_parts(
        var: String,
        doc: String,
        path: Vec<Step>,
        filter: Option<BoolExpr>,
        action: OpAction,
    ) -> UpdateOp {
        UpdateOp { var, doc, path, filter, action }
    }

    /// Lift a parsed script statement into a typed op (lossless).
    pub fn from_stmt(stmt: UpdateStmt) -> UpdateOp {
        let action = match stmt.action {
            UpdateAction::InsertAfter { fragment_xml } => {
                OpAction::Insert { position: InsertPosition::After, fragment_xml }
            }
            UpdateAction::InsertBefore { fragment_xml } => {
                OpAction::Insert { position: InsertPosition::Before, fragment_xml }
            }
            UpdateAction::InsertInto { fragment_xml } => {
                OpAction::Insert { position: InsertPosition::Into, fragment_xml }
            }
            UpdateAction::Delete { rel_path } => OpAction::Delete { rel_path },
            UpdateAction::ReplaceWith { rel_path, new_value } => {
                OpAction::ReplaceText { rel_path, new_value }
            }
        };
        UpdateOp { var: stmt.var, doc: stmt.doc, path: stmt.path, filter: stmt.where_, action }
    }

    /// Lower to the parsed-statement form the resolver consumes
    /// (lossless inverse of [`UpdateOp::from_stmt`]).
    pub fn to_stmt(&self) -> UpdateStmt {
        let action = match &self.action {
            OpAction::Insert { position, fragment_xml } => match position {
                InsertPosition::After => {
                    UpdateAction::InsertAfter { fragment_xml: fragment_xml.clone() }
                }
                InsertPosition::Before => {
                    UpdateAction::InsertBefore { fragment_xml: fragment_xml.clone() }
                }
                InsertPosition::Into => {
                    UpdateAction::InsertInto { fragment_xml: fragment_xml.clone() }
                }
            },
            OpAction::Delete { rel_path } => UpdateAction::Delete { rel_path: rel_path.clone() },
            OpAction::ReplaceText { rel_path, new_value } => UpdateAction::ReplaceWith {
                rel_path: rel_path.clone(),
                new_value: new_value.clone(),
            },
        };
        UpdateStmt {
            var: self.var.clone(),
            doc: self.doc.clone(),
            path: self.path.clone(),
            where_: self.filter.clone(),
            action,
        }
    }
}

/// An ordered batch of typed update operations — the unit the maintenance
/// stack validates once and routes to every affected view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// Parse an update script into a typed batch — the **only** place
    /// script text is parsed; everything downstream consumes the ops.
    pub fn from_script(script: &str) -> Result<UpdateBatch, QueryParseError> {
        Ok(UpdateBatch {
            ops: parse_updates(script)?.into_iter().map(UpdateOp::from_stmt).collect(),
        })
    }

    /// Append one op.
    pub fn push(&mut self, op: UpdateOp) {
        self.ops.push(op);
    }

    /// Builder-style [`UpdateBatch::push`].
    pub fn with(mut self, op: UpdateOp) -> UpdateBatch {
        self.ops.push(op);
        self
    }

    /// Append every op of `other`, preserving order (used by the catalog
    /// session to coalesce queued batches).
    pub fn extend(&mut self, other: UpdateBatch) {
        self.ops.extend(other.ops);
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }
}

impl FromIterator<UpdateOp> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = UpdateOp>>(iter: I) -> UpdateBatch {
        UpdateBatch { ops: iter.into_iter().collect() }
    }
}

impl IntoIterator for UpdateBatch {
    type Item = UpdateOp;
    type IntoIter = std::vec::IntoIter<UpdateOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a UpdateBatch {
    type Item = &'a UpdateOp;
    type IntoIter = std::slice::Iter<'a, UpdateOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// Parse a standalone location path (`/bib/book[2]`, `title`, `@year`,
/// `price/text()`…) into steps — the helper behind the [`UpdateOp`]
/// builders. A leading `/` is optional; the whole input must parse.
pub fn parse_path(input: &str) -> Result<Vec<Step>, QueryParseError> {
    let mut p = P { b: input.as_bytes(), pos: 0 };
    p.ws();
    // `P::steps` expects a leading axis token; bare relative paths
    // (`title`, `@year`) are accepted by prefixing the child axis.
    let normalized;
    if !matches!(p.peek(), Some(b'/')) {
        normalized = format!("/{}", input.trim());
        p = P { b: normalized.as_bytes(), pos: 0 };
        p.ws();
    }
    let steps = p.steps()?;
    p.ws();
    if p.pos < p.b.len() {
        return Err(p.err("trailing input after path"));
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_parsed_script() {
        let built = UpdateBatch::new()
            .with(
                UpdateOp::insert(
                    "bib.xml",
                    "/bib",
                    InsertPosition::Into,
                    "<book year=\"2001\"><title>New</title></book>",
                )
                .unwrap(),
            )
            .with(
                UpdateOp::delete("bib.xml", "/bib/book")
                    .unwrap()
                    .filter("@year", CmpOp::Eq, "1994")
                    .unwrap(),
            )
            .with(
                UpdateOp::replace_text("prices.xml", "/prices/entry", "price/text()", "9.99")
                    .unwrap()
                    .filter("b-title", CmpOp::Eq, "New")
                    .unwrap(),
            );
        let parsed = UpdateBatch::from_script(
            r#"for $u in doc("bib.xml")/bib update $u
               insert <book year="2001"><title>New</title></book> into $u ;
               for $u in doc("bib.xml")/bib/book where $u/@year = "1994"
               update $u delete $u ;
               for $u in doc("prices.xml")/prices/entry where $u/b-title = "New"
               update $u replace $u/price/text() with "9.99""#,
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn stmt_round_trip_is_lossless() {
        let script = r#"for $b in document("bib.xml")/bib/book[2]
            where $b/@year = "1994" and $b/title = "X"
            update $b insert <note>n</note> after $b"#;
        let stmts = parse_updates(script).unwrap();
        for stmt in stmts {
            let op = UpdateOp::from_stmt(stmt.clone());
            assert_eq!(op.to_stmt(), stmt);
        }
    }

    #[test]
    fn kinds_and_accessors() {
        let op = UpdateOp::replace_text("d.xml", "/r/x", "", "v").unwrap();
        assert_eq!(op.kind(), OpKind::Modify);
        assert_eq!(op.doc(), "d.xml");
        assert_eq!(op.path().len(), 2);
        assert!(op.filter_expr().is_none());
        let OpAction::ReplaceText { rel_path, new_value } = op.action() else { panic!() };
        assert!(rel_path.is_empty());
        assert_eq!(new_value, "v");
    }

    #[test]
    fn parse_path_variants() {
        assert_eq!(parse_path("/bib/book").unwrap().len(), 2);
        assert_eq!(parse_path("title").unwrap().len(), 1);
        let attr = parse_path("@year").unwrap();
        assert_eq!(attr[0].test, NodeTest::Attr("year".into()));
        let pos = parse_path("/bib/book[2]").unwrap();
        assert_eq!(pos[1].predicate, Some(crate::ast::StepPredicate::Position(2)));
        assert!(parse_path("/bib/book junk").is_err());
    }

    #[test]
    fn batch_collects_and_iterates() {
        let ops = vec![
            UpdateOp::delete("a.xml", "/r/x").unwrap(),
            UpdateOp::delete("b.xml", "/r/y").unwrap(),
        ];
        let batch: UpdateBatch = ops.clone().into_iter().collect();
        assert_eq!(batch.len(), 2);
        let docs: Vec<&str> = (&batch).into_iter().map(|o| o.doc()).collect();
        assert_eq!(docs, vec!["a.xml", "b.xml"]);
        let mut merged = UpdateBatch::new();
        merged.extend(batch.clone());
        merged.extend(batch);
        assert_eq!(merged.len(), 4);
    }
}
