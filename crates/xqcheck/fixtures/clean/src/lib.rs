//! Clean fixture: exercises every lint's pass path — a justified
//! `unsafe`, an audited atomic, schema-registered metrics (literal and
//! dynamic), a paired codec, and an explicitly allowed exception.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Registry;

pub struct Counter;

pub struct Histogram;

impl Registry {
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram
    }
}

impl Counter {
    pub fn inc(&self) {}
}

impl Histogram {
    pub fn record(&self, _v: u64) {}
}

pub trait Encode {
    fn encode(&self, out: &mut Vec<u8>);
}

pub trait Decode: Sized {
    fn decode(buf: &[u8]) -> Option<Self>;
}

pub struct Pair(pub u64);

impl Encode for Pair {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
}

impl Decode for Pair {
    fn decode(buf: &[u8]) -> Option<Self> {
        Some(Pair(u64::from_le_bytes(buf.get(..8)?.try_into().ok()?)))
    }
}

/// A borrowed mirror that only ever travels outbound.
pub struct PairRef<'a>(pub &'a u64);

// xqcheck: allow(codec-pair) — outbound-only borrowed mirror of Pair
impl Encode for PairRef<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
}

pub fn stop(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

pub fn read(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live &u32.
    unsafe { *p }
}

pub fn record(reg: &Registry, kind: &str) {
    reg.counter("clean/events").inc();
    reg.histogram(&format!("clean/req/{kind}")).record(1);
}
