//! Clean fixture: network-facing crate whose only panics sit in test
//! code or behind a justified allow.

pub fn parse(v: &[u8]) -> Result<u8, ()> {
    v.first().copied().ok_or(())
}

pub fn startup_invariant(x: Option<u8>) -> u8 {
    // xqcheck: allow(no-panic) — startup-only path, config already validated
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        super::parse(&[1]).unwrap();
    }
}
