//! Seeded violation: an atomic `Ordering` site that is not in the
//! fixture's ATOMICS.md audit table.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn stop(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
