//! Seeded violation: a type with an `Encode` impl but no `Decode`.

pub trait Encode {
    fn encode(&self, out: &mut Vec<u8>);
}

pub trait Decode: Sized {
    fn decode(buf: &[u8]) -> Option<Self>;
}

pub struct Orphan(pub u64);

impl Encode for Orphan {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
}
