//! Seeded violation: an `unsafe` block with no justification comment.

pub fn hazard(p: *const u32) -> u32 {
    // This deref is fine, trust me.
    unsafe { *p }
}
