//! Seeded violation: `unwrap()` in the non-test path of a
//! network-facing crate.

pub fn accept(peer: Option<u32>) -> u32 {
    peer.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_fine() {
        Some(1u32).unwrap();
    }
}
