//! Seeded violation: a metric name used in source that the obs schema
//! does not list (and a schema entry no source site uses).

pub struct Registry;

pub struct Counter;

impl Registry {
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }
}

impl Counter {
    pub fn inc(&self) {}
}

pub fn record(reg: &Registry) {
    reg.counter("drift/unregistered").inc();
}
