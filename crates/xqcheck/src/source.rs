//! Per-file source model and the workspace walker. A [`SourceFile`]
//! wraps the token stream with the derived structure every lint needs:
//! which lines belong to `#[cfg(test)]` modules or `#[test]` functions
//! (so production-only lints skip them), which lines carry a
//! `// SAFETY:` comment, and which carry an
//! `// xqcheck: allow(lint-name) — reason` suppression.

use crate::lexer::{tokenize, Tok, Token};
use std::path::{Path, PathBuf};

/// Which directory of a crate a file came from — lints scope by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` of the root package or a workspace crate (incl. `src/bin`).
    Src,
    /// Integration tests (`tests/`).
    Tests,
    /// Benches (`benches/`).
    Benches,
    /// Examples (`examples/`).
    Examples,
}

/// One `xqcheck: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    pub lint: String,
    pub has_reason: bool,
}

pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Crate directory name under `crates/`, `None` for the root package.
    pub crate_name: Option<String>,
    pub section: Section,
    pub tokens: Vec<Token>,
    /// Raw source lines (for fragment matching and reports).
    pub lines: Vec<String>,
    /// Inclusive line ranges covered by `#[cfg(test)] mod … { }` or
    /// `#[test] fn … { }`.
    pub test_spans: Vec<(u32, u32)>,
    /// Lines whose comment contains `SAFETY:`.
    pub safety_lines: Vec<u32>,
    pub allows: Vec<Allow>,
}

impl SourceFile {
    pub fn parse(rel: &str, crate_name: Option<&str>, section: Section, src: &str) -> SourceFile {
        let tokens = tokenize(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let mut safety_lines = Vec::new();
        let mut allows = Vec::new();
        for t in &tokens {
            if let Tok::Comment(c) = &t.kind {
                if c.contains("SAFETY:") {
                    // A block comment may span lines; credit them all.
                    let span = c.matches('\n').count() as u32;
                    for l in t.line..=t.line + span {
                        safety_lines.push(l);
                    }
                }
                if let Some(a) = parse_allow(c, t.line) {
                    allows.push(a);
                }
            }
        }
        let test_spans = find_test_spans(&tokens);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.map(|s| s.to_string()),
            section,
            tokens,
            lines,
            test_spans,
            safety_lines,
            allows,
        }
    }

    /// True when `line` falls inside test-only code.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when an `xqcheck: allow(lint)` directive covers `line`
    /// (trailing on the line itself, or on the line directly above).
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.lint == lint && a.has_reason && (a.line == line || a.line + 1 == line))
    }

    /// The trimmed source text of a 1-based line.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line.saturating_sub(1) as usize).map_or("", |l| l.as_str().trim())
    }
}

/// Parse `xqcheck: allow(lint-name) — reason` out of a comment body.
/// The reason is mandatory: a suppression with no recorded justification
/// does not count (the lint then still fires, pointing here).
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let at = comment.find("xqcheck: allow(")?;
    let rest = &comment[at + "xqcheck: allow(".len()..];
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start_matches([' ', '\t', '—', '-', '–']).trim();
    Some(Allow { line, lint, has_reason: !tail.is_empty() })
}

/// Find line spans of `#[cfg(test)] mod … { … }` and `#[test] fn … { … }`.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let code: Vec<(usize, &Token)> =
        tokens.iter().enumerate().filter(|(_, t)| !matches!(t.kind, Tok::Comment(_))).collect();
    let word = |i: usize, w: &str| -> bool {
        matches!(&code.get(i).map(|(_, t)| &t.kind), Some(Tok::Word(x)) if x == w)
    };
    let punct = |i: usize, p: char| -> bool {
        matches!(code.get(i).map(|(_, t)| &t.kind), Some(Tok::Punct(x)) if *x == p)
    };
    let mut i = 0;
    while i < code.len() {
        // `#[cfg(test)]` or `#[cfg(all(test, …))]` / `#[test]`
        let is_attr_start = punct(i, '#') && punct(i + 1, '[');
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Scan the attribute's tokens up to its closing `]`.
        let mut j = i + 2;
        let mut depth = 1;
        let mut has_test = false;
        let mut is_cfg = word(j, "cfg");
        if word(j, "test") && punct(j + 1, ']') {
            has_test = true;
            is_cfg = true; // `#[test]` counts directly
        }
        while j < code.len() && depth > 0 {
            if punct(j, '[') {
                depth += 1;
            } else if punct(j, ']') {
                depth -= 1;
            } else if word(j, "test") {
                has_test = true;
            }
            j += 1;
        }
        if !(has_test && is_cfg) {
            i = j;
            continue;
        }
        // Skip any further attributes and find the item (`mod` or `fn`).
        let mut k = j;
        while punct(k, '#') && punct(k + 1, '[') {
            let mut d = 1;
            k += 2;
            while k < code.len() && d > 0 {
                if punct(k, '[') {
                    d += 1;
                } else if punct(k, ']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Find the opening brace of the item body, then match braces.
        let mut open = k;
        while open < code.len() && !punct(open, '{') {
            // A `mod tests;` (no body) has nothing to span.
            if punct(open, ';') {
                break;
            }
            open += 1;
        }
        if open >= code.len() || !punct(open, '{') {
            i = k;
            continue;
        }
        let start_line = code[i].1.line;
        let mut d = 1;
        let mut close = open + 1;
        while close < code.len() && d > 0 {
            if punct(close, '{') {
                d += 1;
            } else if punct(close, '}') {
                d -= 1;
            }
            close += 1;
        }
        let end_line = code.get(close.saturating_sub(1)).map_or(u32::MAX, |(_, t)| t.line);
        spans.push((start_line, end_line));
        i = close;
    }
    spans
}

/// The workspace as the lints see it: every `.rs` file under the root
/// package and `crates/*`, parsed once.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walk `root` (a workspace checkout) and parse every source file.
    /// Directories named `target`, `fixtures`, and hidden directories are
    /// skipped.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let sections: &[(&str, Section)] = &[
            ("src", Section::Src),
            ("tests", Section::Tests),
            ("benches", Section::Benches),
            ("examples", Section::Examples),
        ];
        for (dir, section) in sections {
            collect(&root.join(dir), root, None, *section, &mut files)?;
        }
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&crates)?.filter_map(|e| e.ok()).collect();
            entries.sort_by_key(|e| e.file_name());
            for e in entries {
                if !e.path().is_dir() {
                    continue;
                }
                let name = e.file_name().to_string_lossy().to_string();
                for (dir, section) in sections {
                    collect(&e.path().join(dir), root, Some(&name), *section, &mut files)?;
                }
                // Nested crates (crates/shims/rand).
                for sub in std::fs::read_dir(e.path())?.filter_map(|e| e.ok()) {
                    if sub.path().is_dir() && sub.path().join("Cargo.toml").is_file() {
                        let sub_name = sub.file_name().to_string_lossy().to_string();
                        for (dir, section) in sections {
                            collect(
                                &sub.path().join(dir),
                                root,
                                Some(&sub_name),
                                *section,
                                &mut files,
                            )?;
                        }
                    }
                }
            }
        }
        Ok(Workspace { root: root.to_path_buf(), files })
    }

    /// Read a root-level companion file (`ATOMICS.md`, the obs schema).
    pub fn read_root_file(&self, rel: &str) -> Option<String> {
        std::fs::read_to_string(self.root.join(rel)).ok()
    }
}

fn collect(
    dir: &Path,
    root: &Path,
    crate_name: Option<&str>,
    section: Section,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, root, crate_name, section, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(&path)?;
            out.push(SourceFile::parse(&rel, crate_name, section, &src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span_covers_its_body() {
        let src =
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", None, Section::Src, src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn test_fn_span() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    body();\n}\nfn b() {}\n";
        let f = SourceFile::parse("x.rs", None, Section::Src, src);
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(1));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn allow_requires_reason() {
        let src = "// xqcheck: allow(no-panic) — invariant: queue non-empty\nx.unwrap();\n\
                   // xqcheck: allow(no-panic)\ny.unwrap();\n";
        let f = SourceFile::parse("x.rs", None, Section::Src, src);
        assert!(f.allowed("no-panic", 2), "directive with reason covers the next line");
        assert!(!f.allowed("no-panic", 4), "reason-less directive does not count");
        assert!(!f.allowed("safety-comment", 2), "directive is lint-specific");
    }

    #[test]
    fn safety_comment_lines_tracked() {
        let src = "// SAFETY: the ledger outlives the call\nunsafe { go() }\n";
        let f = SourceFile::parse("x.rs", None, Section::Src, src);
        assert_eq!(f.safety_lines, vec![1]);
    }

    #[test]
    fn attrs_in_strings_do_not_open_spans() {
        let src = "let s = \"#[cfg(test)] mod x {\";\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", None, Section::Src, src);
        assert!(f.test_spans.is_empty());
        assert!(!f.in_test_code(2));
    }
}
