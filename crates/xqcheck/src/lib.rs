//! xqcheck — project-invariant lints for the xqview workspace.
//!
//! The general-purpose toolchain (rustc, clippy) enforces language
//! invariants; this crate enforces *project* invariants — rules that
//! only hold because of how this codebase is built:
//!
//! - **safety-comment** — every `unsafe` block/impl/fn carries a
//!   `// SAFETY:` comment stating the invariant it relies on.
//! - **no-panic** — no `unwrap()`/`expect()`/`panic!` in non-test code
//!   of the network-facing crates (`proto`, `server`, `client`): a
//!   malformed frame must close one connection, not the process.
//! - **atomics-audit** — every `Ordering::{Relaxed,…,SeqCst}` site is
//!   listed in the checked-in [`ATOMICS.md`](../../ATOMICS.md) audit
//!   table with its role and pairing, and the table has no stale rows.
//! - **metrics-schema** — every `obs` metric name used in source
//!   appears in `ci/obs-schema.txt` and vice versa, so the CI smoke
//!   assertions and the code cannot drift.
//! - **codec-pair** — every type with a `wire::Encode` impl has a
//!   matching `Decode` impl: wire types must round-trip.
//!
//! Suppression is explicit and justified:
//! `// xqcheck: allow(lint-name) — reason`. The crate is dependency-free
//! (hand-rolled lexer, no `syn`) so it builds instantly and can run as
//! an ordinary workspace test.

pub mod lexer;
pub mod lints;
pub mod selftest;
pub mod source;

pub use lints::{run, Finding, LINTS};
pub use source::Workspace;

use std::path::Path;

/// Load the workspace at `root` and run the named lint (or all lints).
/// Convenience wrapper used by the binary and the tree test.
pub fn check(root: &Path, which: Option<&str>) -> Result<Vec<Finding>, String> {
    let ws = Workspace::load(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    run(&ws, which)
}
