//! A small hand-rolled Rust lexer — just enough structure for the
//! project lints: it separates code from comments and string literals
//! (so a lint never fires on prose or test data), tracks line numbers,
//! and understands the literal forms that would otherwise desynchronize
//! a scanner (raw strings with `#` fences, nested block comments,
//! char-vs-lifetime ticks). It is deliberately **not** a parser: lints
//! work on token patterns, which keeps the tool dependency-free and fast
//! enough to run on every file of the workspace in a test.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or number run.
    Word(String),
    /// Single punctuation character (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// String literal (cooked, raw, or byte); payload is the *content*,
    /// escapes left as written.
    Str(String),
    /// Char literal (`'a'`, `'\n'`); content is irrelevant to the lints.
    Char,
    /// Lifetime tick (`'a`, `'_`).
    Lifetime,
    /// One `//…` line comment or `/*…*/` block comment, text included
    /// (with its delimiters stripped on line comments, kept raw for
    /// block comments — the lints only substring-match).
    Comment(String),
}

/// Tokenize `src`, never failing: unterminated literals are closed at
/// end-of-file (a lint pass must degrade gracefully on code that does
/// not compile yet).
pub fn tokenize(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Count newlines in b[from..to] into `line`.
    let bump = |from: usize, to: usize, line: &mut u32| {
        *line += b[from..to.min(n)].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.push(Token { kind: Tok::Comment(b[start..j].iter().collect()), line });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Rust block comments nest.
                let at = line;
                let start = i;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == '/' && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == '*' && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                bump(start, j, &mut line);
                out.push(Token {
                    kind: Tok::Comment(b[start..j.min(n)].iter().collect()),
                    line: at,
                });
                i = j;
            }
            '"' => {
                let at = line;
                let (content, j) = cooked_string(&b, i + 1);
                bump(i, j, &mut line);
                out.push(Token { kind: Tok::Str(content), line: at });
                i = j;
            }
            'r' | 'b' if raw_or_byte_string(&b, i).is_some() => {
                let at = line;
                let (content, j) = raw_or_byte_string(&b, i).expect("checked above");
                bump(i, j, &mut line);
                out.push(Token { kind: Tok::Str(content), line: at });
                i = j;
            }
            '\'' => {
                // Char literal or lifetime tick. `'\…'` is always a char;
                // `'x'` is a char; `'ident` (no closing tick) a lifetime.
                if i + 1 < n && b[i + 1] == '\\' {
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // the escaped char
                    }
                    // Consume to closing quote (handles \u{…}).
                    while j < n && b[j] != '\'' {
                        j += 1;
                    }
                    out.push(Token { kind: Tok::Char, line });
                    i = (j + 1).min(n);
                } else if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                    out.push(Token { kind: Tok::Char, line });
                    i += 3;
                } else {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.push(Token { kind: Tok::Lifetime, line });
                    i = j.max(i + 1);
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.push(Token { kind: Tok::Word(b[start..j].iter().collect()), line });
                i = j;
            }
            other => {
                out.push(Token { kind: Tok::Punct(other), line });
                i += 1;
            }
        }
    }
    out
}

/// Consume a cooked string body starting after the opening quote;
/// returns (content, index past the closing quote).
fn cooked_string(b: &[char], mut i: usize) -> (String, usize) {
    let n = b.len();
    let mut s = String::new();
    while i < n {
        match b[i] {
            '\\' if i + 1 < n => {
                s.push(b[i]);
                s.push(b[i + 1]);
                i += 2;
            }
            '"' => return (s, i + 1),
            c => {
                s.push(c);
                i += 1;
            }
        }
    }
    (s, n)
}

/// Try to lex a raw/byte string starting at `i` (`r"…"`, `r#"…"#`,
/// `b"…"`, `br#"…"#`); returns (content, index past the close) or None
/// if this is not one (then `r`/`b` is an ordinary identifier start).
fn raw_or_byte_string(b: &[char], i: usize) -> Option<(String, usize)> {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    if b[j] == 'b' {
        j += 1;
        if j < n && b[j] == 'r' {
            raw = true;
            j += 1;
        }
    } else if b[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut fences = 0usize;
    if raw {
        while j < n && b[j] == '#' {
            fences += 1;
            j += 1;
        }
    }
    if j >= n || b[j] != '"' {
        return None;
    }
    // A bare identifier like `r` or `b` followed by a string would have
    // been split by whitespace/punct; reaching here means a literal.
    j += 1;
    if !raw {
        let (s, k) = cooked_string(b, j);
        return Some((s, k));
    }
    let start = j;
    while j < n {
        if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && b[k] == '#' && seen < fences {
                seen += 1;
                k += 1;
            }
            if seen == fences {
                return Some((b[start..j].iter().collect(), k));
            }
        }
        j += 1;
    }
    Some((b[start..].iter().collect(), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_puncts_and_lines() {
        let toks = tokenize("fn a() {\n  b.c();\n}");
        assert_eq!(toks[0].kind, Tok::Word("fn".into()));
        assert_eq!(toks[0].line, 1);
        let dot = toks.iter().find(|t| t.kind == Tok::Punct('.')).expect("dot");
        assert_eq!(dot.line, 2);
    }

    #[test]
    fn comments_are_single_tokens() {
        let toks = kinds("x // unsafe unwrap()\ny /* Ordering::SeqCst */ z");
        assert_eq!(
            toks,
            vec![
                Tok::Word("x".into()),
                Tok::Comment(" unsafe unwrap()".into()),
                Tok::Word("y".into()),
                Tok::Comment("/* Ordering::SeqCst */".into()),
                Tok::Word("z".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert!(matches!(&toks[1], Tok::Comment(c) if c.contains("inner")));
    }

    #[test]
    fn strings_swallow_code_lookalikes() {
        let toks = kinds(r#"let s = "unsafe { x.unwrap() }";"#);
        assert!(toks.iter().all(|t| !matches!(t, Tok::Word(w) if w == "unsafe")));
        assert!(toks.iter().any(|t| matches!(t, Tok::Str(s) if s.contains("unwrap"))));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let s = r#"a "quoted" panic!()"#; x"###);
        assert!(toks.iter().any(|t| matches!(t, Tok::Str(s) if s.contains("quoted"))));
        assert_eq!(toks.last(), Some(&Tok::Word("x".into())));
    }

    #[test]
    fn escaped_quotes_in_cooked_strings() {
        let toks = kinds(r#"f("a\"b"); g"#);
        assert!(toks.iter().any(|t| matches!(t, Tok::Str(s) if s == "a\\\"b")));
        assert_eq!(toks.last(), Some(&Tok::Word("g".into())));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("x: &'a str = 'c'; y = '\\n';");
        assert_eq!(toks.iter().filter(|t| **t == Tok::Lifetime).count(), 1);
        assert_eq!(toks.iter().filter(|t| **t == Tok::Char).count(), 2);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = tokenize("let s = \"a\nb\";\nnext");
        let next = toks.iter().find(|t| t.kind == Tok::Word("next".into())).expect("next");
        assert_eq!(next.line, 3);
    }
}
