//! CLI for the project-invariant lints.
//!
//! ```text
//! cargo run -p xqcheck -- all                 # every lint
//! cargo run -p xqcheck -- no-panic            # one lint by name
//! cargo run -p xqcheck -- selftest            # fixtures must be caught
//! cargo run -p xqcheck -- atomics-skeleton    # rows for unaudited sites
//! cargo run -p xqcheck -- all --root <path>   # lint another checkout
//! ```
//!
//! Exit status: 0 when clean, 1 when any lint fires (or any self-test
//! fixture escapes its lint), 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: xqcheck <all|selftest|atomics-skeleton|LINT> [--root PATH]");
    eprintln!("lints:");
    for (name, _) in xqcheck::LINTS {
        eprintln!("  {name}");
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ if cmd.is_none() => cmd = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(cmd) = cmd else { return usage() };
    // Default to the workspace this binary was built from.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    match cmd.as_str() {
        "selftest" => {
            let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
            let failures = xqcheck::selftest::run(&fixtures);
            if failures.is_empty() {
                println!("xqcheck selftest: {} fixture cases ok", xqcheck::selftest::CASES.len());
                ExitCode::SUCCESS
            } else {
                for f in &failures {
                    eprintln!("selftest failure: {f}");
                }
                ExitCode::FAILURE
            }
        }
        "atomics-skeleton" => match xqcheck::Workspace::load(&root) {
            Ok(ws) => {
                for row in xqcheck::lints::atomics_skeleton(&ws) {
                    println!("{row}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xqcheck: walking {}: {e}", root.display());
                ExitCode::from(2)
            }
        },
        name => {
            let which = if name == "all" { None } else { Some(name) };
            match xqcheck::check(&root, which) {
                Ok(findings) if findings.is_empty() => {
                    println!("xqcheck: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("{f}");
                    }
                    eprintln!("xqcheck: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xqcheck: {e}");
                    usage()
                }
            }
        }
    }
}
