//! The project-invariant lints. Each lint walks the parsed
//! [`Workspace`] and returns named, `file:line`-anchored [`Finding`]s;
//! the binary exits nonzero when any lint fires. Suppression is always
//! explicit and always justified:
//! `// xqcheck: allow(lint-name) — reason` on the offending line or the
//! line above (a reason-less allow does not count).

use crate::lexer::Tok;
use crate::source::{Section, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Relative path of the atomic-ordering audit table.
pub const ATOMICS_FILE: &str = "ATOMICS.md";
/// Relative path of the obs metric-name schema.
pub const SCHEMA_FILE: &str = "ci/obs-schema.txt";

/// Crates whose non-test code must not panic: they face the network,
/// where a panic turns one defective peer into a process-wide incident.
const NET_CRATES: &[&str] = &["proto", "server", "client"];

/// The atomic `Ordering` variants (distinguishes `sync::atomic::Ordering`
/// from `cmp::Ordering`, whose variants are Less/Equal/Greater).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.msg)
    }
}

fn finding(lint: &'static str, f: &SourceFile, line: u32, msg: String) -> Finding {
    Finding { lint, file: f.rel.clone(), line, msg }
}

/// Non-comment tokens of a file, with their indices preserved for
/// pattern lookahead.
fn code_tokens(f: &SourceFile) -> Vec<(u32, &Tok)> {
    f.tokens
        .iter()
        .filter(|t| !matches!(t.kind, Tok::Comment(_)))
        .map(|t| (t.line, &t.kind))
        .collect()
}

fn is_word(t: Option<&(u32, &Tok)>, w: &str) -> bool {
    matches!(t, Some((_, Tok::Word(x))) if x == w)
}

fn is_punct(t: Option<&(u32, &Tok)>, p: char) -> bool {
    matches!(t, Some((_, Tok::Punct(x))) if *x == p)
}

// ---------------------------------------------------------------------
// Lint 1: safety-comment — every `unsafe` carries a `// SAFETY:` comment.
// ---------------------------------------------------------------------

/// How far above an `unsafe` token a `SAFETY:` comment may sit (lines).
const SAFETY_WINDOW: u32 = 5;

pub fn safety_comment(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        for t in &f.tokens {
            let Tok::Word(w) = &t.kind else { continue };
            if w != "unsafe" {
                continue;
            }
            let covered =
                f.safety_lines.iter().any(|&l| l <= t.line && l + SAFETY_WINDOW >= t.line);
            if covered || f.allowed("safety-comment", t.line) {
                continue;
            }
            out.push(finding(
                "safety-comment",
                f,
                t.line,
                format!(
                    "`unsafe` with no `// SAFETY:` comment within {SAFETY_WINDOW} lines — state \
                     the invariant this relies on"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lint 2: no-panic — no unwrap()/expect()/panic! in non-test code of the
// network-facing crates.
// ---------------------------------------------------------------------

pub fn no_panic(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        let in_scope = f.section == Section::Src
            && f.crate_name.as_deref().is_some_and(|c| NET_CRATES.contains(&c));
        if !in_scope {
            continue;
        }
        let code = code_tokens(f);
        for i in 0..code.len() {
            let (line, tok) = code[i];
            let Tok::Word(w) = tok else { continue };
            let hit = match w.as_str() {
                "unwrap" | "expect" => {
                    i > 0 && is_punct(code.get(i - 1), '.') && is_punct(code.get(i + 1), '(')
                }
                "panic" => is_punct(code.get(i + 1), '!'),
                _ => false,
            };
            if !hit || f.in_test_code(line) || f.allowed("no-panic", line) {
                continue;
            }
            out.push(finding(
                "no-panic",
                f,
                line,
                format!(
                    "`{w}` in non-test code of network-facing crate `{}` — return a typed error \
                     (or log and close the connection) instead",
                    f.crate_name.as_deref().unwrap_or("?")
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lint 3: atomics-audit — every atomic Ordering site appears in the
// checked-in ATOMICS.md table (and no stale rows).
// ---------------------------------------------------------------------

/// One row of the audit table: `| file | fragment | ordering | role … |`.
#[derive(Debug, Clone)]
pub struct AuditRow {
    pub file: String,
    pub fragment: String,
    pub ordering: String,
    pub row_line: u32,
}

/// Parse the markdown table rows out of `ATOMICS.md` (any `|`-delimited
/// row whose third cell is an Ordering variant; headers and separators
/// fall out naturally).
pub fn parse_audit(md: &str) -> Vec<AuditRow> {
    let mut rows = Vec::new();
    for (i, raw) in md.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<String> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').to_string())
            .collect();
        if cells.len() < 3 || !ATOMIC_ORDERINGS.contains(&cells[2].as_str()) {
            continue;
        }
        rows.push(AuditRow {
            file: cells[0].clone(),
            fragment: cells[1].clone(),
            ordering: cells[2].clone(),
            row_line: i as u32 + 1,
        });
    }
    rows
}

/// An atomic-ordering use site found in source.
pub struct AtomicSite<'a> {
    pub file: &'a SourceFile,
    pub line: u32,
    pub ordering: &'a str,
}

pub fn atomic_sites(ws: &Workspace) -> Vec<AtomicSite<'_>> {
    let mut sites = Vec::new();
    for f in &ws.files {
        if f.section != Section::Src {
            continue;
        }
        let code = code_tokens(f);
        for i in 0..code.len() {
            if !is_word(code.get(i), "Ordering")
                || !is_punct(code.get(i + 1), ':')
                || !is_punct(code.get(i + 2), ':')
            {
                continue;
            }
            let Some((line, Tok::Word(variant))) = code.get(i + 3) else { continue };
            let Some(&ordering) = ATOMIC_ORDERINGS.iter().find(|&&o| o == variant) else {
                continue;
            };
            if f.in_test_code(*line) {
                continue;
            }
            sites.push(AtomicSite { file: f, line: *line, ordering });
        }
    }
    sites
}

pub fn atomics_audit(ws: &Workspace) -> Vec<Finding> {
    let Some(md) = ws.read_root_file(ATOMICS_FILE) else {
        return vec![Finding {
            lint: "atomics-audit",
            file: ATOMICS_FILE.to_string(),
            line: 1,
            msg: "missing ATOMICS.md — every atomic Ordering site must be audited there".into(),
        }];
    };
    let rows = parse_audit(&md);
    let mut used = vec![false; rows.len()];
    let mut out = Vec::new();
    for site in atomic_sites(ws) {
        if site.file.allowed("atomics-audit", site.line) {
            continue;
        }
        let text = site.file.line_text(site.line);
        let hit = rows.iter().enumerate().find(|(_, r)| {
            r.file == site.file.rel && r.ordering == site.ordering && text.contains(&r.fragment)
        });
        match hit {
            Some((i, _)) => used[i] = true,
            None => out.push(finding(
                "atomics-audit",
                site.file,
                site.line,
                format!(
                    "`Ordering::{}` site is not in the ATOMICS.md audit table — add a row \
                     (file, fragment, ordering, role, pairing) so the ordering is reviewed",
                    site.ordering
                ),
            )),
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if !used[i] {
            out.push(Finding {
                lint: "atomics-audit",
                file: ATOMICS_FILE.to_string(),
                line: row.row_line,
                msg: format!(
                    "stale audit row: no `Ordering::{}` site in `{}` matches fragment `{}`",
                    row.ordering, row.file, row.fragment
                ),
            });
        }
    }
    out
}

/// Emit skeleton audit rows for every currently-unaudited site — the
/// helper for extending ATOMICS.md after adding an atomic.
pub fn atomics_skeleton(ws: &Workspace) -> Vec<String> {
    let rows = ws.read_root_file(ATOMICS_FILE).map(|md| parse_audit(&md)).unwrap_or_default();
    let mut out = Vec::new();
    for site in atomic_sites(ws) {
        let text = site.file.line_text(site.line);
        let audited = rows.iter().any(|r| {
            r.file == site.file.rel && r.ordering == site.ordering && text.contains(&r.fragment)
        });
        if !audited {
            out.push(format!(
                "| {} | `{}` | {} | TODO role — TODO pairing |",
                site.file.rel,
                text.replace('|', "\\|"),
                site.ordering
            ));
        }
    }
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Lint 4: metrics-schema — obs metric names used in source and the
// checked-in schema must agree, both directions.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SchemaEntry {
    pub kind: String,
    pub name: String,
}

/// Parse `ci/obs-schema.txt`: one `kind name [smoke]` per line, `#`
/// comments. `*` in a name is a wildcard for a runtime-formatted
/// segment.
pub fn parse_schema(text: &str) -> Vec<SchemaEntry> {
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(kind), Some(name)) = (it.next(), it.next()) else { continue };
        out.push(SchemaEntry { kind: kind.to_string(), name: name.to_string() });
    }
    out
}

/// A metric-name use site: `.counter("…")` / `.gauge(&format!("…"))` / …
pub struct MetricSite<'a> {
    pub file: &'a SourceFile,
    pub line: u32,
    pub kind: &'static str,
    /// The literal name, or the format string with `{…}` replaced by `*`.
    pub name: String,
    pub dynamic: bool,
}

pub fn metric_sites(ws: &Workspace) -> Vec<MetricSite<'_>> {
    let mut sites = Vec::new();
    for f in &ws.files {
        if !matches!(f.section, Section::Src | Section::Examples) {
            continue;
        }
        let code = code_tokens(f);
        for i in 0..code.len() {
            let Some((line, Tok::Word(w))) = code.get(i) else { continue };
            let kind = match w.as_str() {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                _ => continue,
            };
            // Method-call shape only: `.counter(`, never `fn counter(`.
            if i == 0 || !is_punct(code.get(i - 1), '.') || !is_punct(code.get(i + 1), '(') {
                continue;
            }
            if f.in_test_code(*line) {
                continue;
            }
            // Literal: `.counter("name")`
            if let Some((_, Tok::Str(s))) = code.get(i + 2) {
                sites.push(MetricSite {
                    file: f,
                    line: *line,
                    kind,
                    name: s.clone(),
                    dynamic: false,
                });
                continue;
            }
            // Dynamic: `.counter(&format!("pre/{x}/post"))`
            let fmt_at = if is_punct(code.get(i + 2), '&') { i + 3 } else { i + 2 };
            if is_word(code.get(fmt_at), "format")
                && is_punct(code.get(fmt_at + 1), '!')
                && is_punct(code.get(fmt_at + 2), '(')
            {
                if let Some((_, Tok::Str(s))) = code.get(fmt_at + 3) {
                    sites.push(MetricSite {
                        file: f,
                        line: *line,
                        kind,
                        name: wildcard_pattern(s),
                        dynamic: true,
                    });
                }
            }
            // Anything else (a variable) cannot be checked statically.
        }
    }
    sites
}

/// Turn a format string into a schema pattern: `net/req/{kind}` →
/// `net/req/*`.
fn wildcard_pattern(fmt: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in fmt.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Glob match where `*` spans any characters (metric segments may
/// themselves contain `/`, e.g. span names).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((pre, rest)) => {
            let Some(tail) = name.strip_prefix(pre) else { return false };
            if rest.is_empty() {
                return true;
            }
            (0..=tail.len()).any(|k| tail.is_char_boundary(k) && glob_match(rest, &tail[k..]))
        }
    }
}

pub fn metrics_schema(ws: &Workspace) -> Vec<Finding> {
    let Some(text) = ws.read_root_file(SCHEMA_FILE) else {
        return vec![Finding {
            lint: "metrics-schema",
            file: SCHEMA_FILE.to_string(),
            line: 1,
            msg: "missing obs metric schema — every metric name must be registered there".into(),
        }];
    };
    let schema = parse_schema(&text);
    let mut out = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for site in metric_sites(ws) {
        if site.file.allowed("metrics-schema", site.line) {
            continue;
        }
        let hit = schema.iter().enumerate().find(|(_, e)| {
            e.kind == site.kind
                && if site.dynamic { e.name == site.name } else { glob_match(&e.name, &site.name) }
        });
        match hit {
            Some((i, _)) => {
                used.insert(i);
            }
            None => out.push(finding(
                "metrics-schema",
                site.file,
                site.line,
                format!(
                    "{} `{}` is not in {SCHEMA_FILE} — register it (and extend the CI obs-smoke \
                     assertions if it should be exercised by the metrics example)",
                    site.kind, site.name
                ),
            )),
        }
    }
    for (i, e) in schema.iter().enumerate() {
        if !used.contains(&i) {
            out.push(Finding {
                lint: "metrics-schema",
                file: SCHEMA_FILE.to_string(),
                line: 1 + text.lines().position(|l| l.contains(&e.name)).unwrap_or(0) as u32,
                msg: format!(
                    "schema entry `{} {}` matches no source site — remove it or fix the drift",
                    e.kind, e.name
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lint 5: codec-pair — every `wire::Encode` impl has a matching
// `Decode` impl (and vice versa).
// ---------------------------------------------------------------------

/// One `impl … Encode/Decode for Target` site.
pub struct CodecImpl<'a> {
    pub file: &'a SourceFile,
    pub line: u32,
    pub trait_name: String,
    /// Whitespace-normalized target type text.
    pub target: String,
}

pub fn codec_impls(ws: &Workspace) -> Vec<CodecImpl<'_>> {
    let mut out = Vec::new();
    for f in &ws.files {
        if f.section != Section::Src {
            continue;
        }
        let code = code_tokens(f);
        let mut i = 0;
        while i < code.len() {
            if !is_word(code.get(i), "impl") {
                i += 1;
                continue;
            }
            let impl_line = code[i].0;
            let mut j = i + 1;
            // Skip the generic parameter list, if any.
            if is_punct(code.get(j), '<') {
                let mut d = 1;
                j += 1;
                while j < code.len() && d > 0 {
                    if is_punct(code.get(j), '<') {
                        d += 1;
                    } else if is_punct(code.get(j), '>') {
                        d -= 1;
                    }
                    j += 1;
                }
            }
            // Collect the trait path up to `for` (bounded: a non-trait
            // impl block has `{` first).
            let mut trait_words: Vec<String> = Vec::new();
            let mut k = j;
            let mut saw_for = false;
            while k < code.len() && k < j + 12 {
                match code[k].1 {
                    Tok::Word(w) if w == "for" => {
                        saw_for = true;
                        break;
                    }
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    Tok::Word(w) => trait_words.push(w.clone()),
                    _ => {}
                }
                k += 1;
            }
            let trait_name = trait_words.last().cloned().unwrap_or_default();
            if !saw_for || (trait_name != "Encode" && trait_name != "Decode") {
                i = j;
                continue;
            }
            // Render the target type up to `{` or `where`.
            let mut target = String::new();
            let mut m = k + 1;
            while m < code.len() {
                match code[m].1 {
                    Tok::Punct('{') => break,
                    Tok::Word(w) if w == "where" => break,
                    Tok::Word(w) => target.push_str(w),
                    Tok::Punct(p) => target.push(*p),
                    Tok::Lifetime => target.push_str("'_"),
                    _ => {}
                }
                m += 1;
            }
            // `?Sized` bounds never appear in the target position; strip
            // nothing further — exact text is the pairing key.
            out.push(CodecImpl { file: f, line: impl_line, trait_name, target });
            i = m;
        }
    }
    out
}

pub fn codec_pair(ws: &Workspace) -> Vec<Finding> {
    let impls = codec_impls(ws);
    let mut by_target: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for im in &impls {
        let e = by_target.entry(im.target.as_str()).or_default();
        if im.trait_name == "Encode" {
            e.0 = true;
        } else {
            e.1 = true;
        }
    }
    let mut out = Vec::new();
    for im in &impls {
        let (has_enc, has_dec) = by_target[im.target.as_str()];
        let missing = match im.trait_name.as_str() {
            "Encode" if !has_dec => "Decode",
            "Decode" if !has_enc => "Encode",
            _ => continue,
        };
        if im.file.allowed("codec-pair", im.line) {
            continue;
        }
        out.push(finding(
            "codec-pair",
            im.file,
            im.line,
            format!(
                "`{}` has an `{}` impl but no `{missing}` impl — wire types must round-trip \
                 (decode-side validation is the recovery path's input filter)",
                im.target, im.trait_name
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------

/// One lint entry: name plus the pass over a parsed workspace.
pub type Lint = (&'static str, fn(&Workspace) -> Vec<Finding>);

/// Every lint, in report order.
pub const LINTS: &[Lint] = &[
    ("safety-comment", safety_comment),
    ("no-panic", no_panic),
    ("atomics-audit", atomics_audit),
    ("metrics-schema", metrics_schema),
    ("codec-pair", codec_pair),
];

/// Run one lint by name, or all of them.
pub fn run(ws: &Workspace, which: Option<&str>) -> Result<Vec<Finding>, String> {
    match which {
        None => Ok(LINTS.iter().flat_map(|(_, f)| f(ws)).collect()),
        Some(name) => LINTS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f(ws))
            .ok_or_else(|| format!("unknown lint `{name}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_patterns() {
        assert_eq!(wildcard_pattern("net/req/{kind}"), "net/req/*");
        assert_eq!(wildcard_pattern("view/{name}/apply"), "view/*/apply");
        assert_eq!(wildcard_pattern("plain"), "plain");
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("net/req/*", "net/req/commit"));
        assert!(glob_match("span/*", "span/vpa/propagate"), "* spans slashes");
        assert!(glob_match("hub/session/*/depth", "hub/session/7/depth"));
        assert!(!glob_match("hub/session/*/depth", "hub/session/7/other"));
        assert!(!glob_match("exact", "exact/not"));
        assert!(glob_match("exact", "exact"));
    }

    #[test]
    fn audit_table_parse() {
        let md = "# Audit\n\n| File | Context | Ordering | Role |\n|---|---|---|---|\n\
                  | crates/x/src/lib.rs | `stop.load(` | SeqCst | stop flag — pairs with store |\n";
        let rows = parse_audit(md);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].fragment, "stop.load(");
        assert_eq!(rows[0].ordering, "SeqCst");
    }

    #[test]
    fn schema_parse_ignores_comments() {
        let e = parse_schema("# c\ncounter a/b\nhistogram net/req/* # per-kind\n\n");
        assert_eq!(e.len(), 2);
        assert_eq!(e[1], SchemaEntry { kind: "histogram".into(), name: "net/req/*".into() });
    }
}
