//! Lint self-tests against seeded bad fixtures. Each fixture under
//! `crates/xqcheck/fixtures/` is a miniature workspace checkout that
//! violates exactly one invariant; the self-test runs the matching lint
//! and fails if the violation is *not* caught. A `clean` fixture runs
//! every lint and must produce zero findings — together these pin both
//! directions (the lints fire when they should, and only then).

use crate::lints;
use crate::source::Workspace;
use std::path::Path;

/// (fixture dir, lint that must fire there; `None` = all lints must stay
/// silent).
pub const CASES: &[(&str, Option<&str>)] = &[
    ("missing_safety", Some("safety-comment")),
    ("unwrap_in_server", Some("no-panic")),
    ("unregistered_atomic", Some("atomics-audit")),
    ("metric_drift", Some("metrics-schema")),
    ("encode_no_decode", Some("codec-pair")),
    ("clean", None),
];

/// Run all fixture cases; returns the list of failures (empty = pass).
pub fn run(fixtures_root: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    for (dir, expect) in CASES {
        let root = fixtures_root.join(dir);
        let ws = match Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                failures.push(format!("{dir}: cannot load fixture: {e}"));
                continue;
            }
        };
        if ws.files.is_empty() {
            failures.push(format!("{dir}: fixture has no source files"));
            continue;
        }
        match expect {
            Some(lint) => {
                let findings = lints::run(&ws, Some(lint)).unwrap_or_default();
                if findings.is_empty() {
                    failures
                        .push(format!("{dir}: lint `{lint}` failed to catch the seeded violation"));
                }
            }
            None => {
                let findings = lints::run(&ws, None).unwrap_or_default();
                for f in findings {
                    failures.push(format!("{dir}: unexpected finding on clean fixture: {f}"));
                }
            }
        }
    }
    failures
}
