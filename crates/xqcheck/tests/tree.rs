//! The workspace's own tree must satisfy every project invariant, and
//! the seeded bad fixtures must each be caught. Running this as an
//! ordinary integration test makes `cargo test` enforce the lints
//! permanently — CI's `analysis` job is then just a faster, earlier
//! surface for the same check.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_tree_is_lint_clean() {
    let findings = xqcheck::check(&repo_root(), None).expect("workspace loads");
    assert!(
        findings.is_empty(),
        "xqcheck found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn selftest_fixtures_are_caught() {
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let failures = xqcheck::selftest::run(&fixtures);
    assert!(failures.is_empty(), "selftest failures:\n{}", failures.join("\n"));
}
